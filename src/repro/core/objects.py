"""The PCSI object model: "everything is a file" (§3.2).

Objects come in the paper's five basic kinds — directories, regular
files, FIFOs, sockets, and device interfaces to system services. Like
POSIX, different kinds implement the common interface differently;
unlike POSIX, every object carries two extra pieces of metadata that
shape how the system may implement it:

* a **mutability level** (Figure 1), and
* a **consistency level** (§3.3's two-entry menu).

The kernel's *object table* stores these records; regular-file
*content* lives in the data layer (:mod:`repro.core.consistency`),
keyed by object id. FIFO and socket queues are transient kernel state
pinned to a host node.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

from ..security.capabilities import Right
from .errors import ObjectTypeError
from .mutability import Mutability


class ObjectKind(Enum):
    """The basic object types of §3.2."""

    REGULAR = "regular"
    DIRECTORY = "directory"
    FIFO = "fifo"
    SOCKET = "socket"
    DEVICE = "device"


class Consistency(Enum):
    """§3.3's deliberately small menu: one strong level, one weak."""

    LINEARIZABLE = "linearizable"
    EVENTUAL = "eventual"


@dataclass
class DirEntry:
    """A named edge from a directory to an object.

    The entry records the rights a resolver may obtain through this
    name — resolution attenuates, it never amplifies.
    """

    object_id: str
    rights: Right
    whiteout: bool = False  # union-fs deletion marker


@dataclass
class PCSIObject:
    """One row of the kernel object table."""

    object_id: str
    kind: ObjectKind
    mutability: Mutability = Mutability.MUTABLE
    consistency: Consistency = Consistency.LINEARIZABLE
    size: int = 0
    created_at: float = 0.0
    meta: Any = None
    #: FIFO/socket/device state is pinned to a node for latency modeling.
    host_node: Optional[str] = None
    #: Ephemeral objects hold intermediate data "intended only for the
    #: next task" (§4.1): content lives in memory on the writer's node
    #: instead of the replicated data layer, so a co-located consumer
    #: pays a device copy rather than a quorum round trip.
    ephemeral: bool = False
    #: Directory entries (DIRECTORY kind only).
    entries: Dict[str, DirEntry] = field(default_factory=dict)
    #: Union lower layers (DIRECTORY kind only): list of object_ids,
    #: top-most first; the object's own entries are the writable layer.
    lower_layers: Any = None

    def require_kind(self, kind: ObjectKind) -> "PCSIObject":
        """Assert the object is of ``kind``; returns self for chaining."""
        if self.kind != kind:
            raise ObjectTypeError(
                f"object {self.object_id} is {self.kind.value}, "
                f"expected {kind.value}")
        return self

    @property
    def is_directory(self) -> bool:
        return self.kind == ObjectKind.DIRECTORY

    @property
    def is_union(self) -> bool:
        """True for directories with lower layers mounted."""
        return self.is_directory and bool(self.lower_layers)


class ObjectTable:
    """The kernel's metadata table: object_id -> PCSIObject.

    A real implementation replicates this control plane; here lookups
    are charged a flat control-plane latency by the kernel facade.
    """

    def __init__(self, id_prefix: str = "o"):
        self._objects: Dict[str, PCSIObject] = {}
        self._ids = itertools.count(1)
        self._prefix = id_prefix

    def new_id(self) -> str:
        """Allocate a fresh object id."""
        return f"{self._prefix}{next(self._ids)}"

    def insert(self, obj: PCSIObject) -> PCSIObject:
        """Register a new object."""
        if obj.object_id in self._objects:
            raise ValueError(f"duplicate object id {obj.object_id}")
        self._objects[obj.object_id] = obj
        return obj

    def get(self, object_id: str) -> Optional[PCSIObject]:
        """Fetch a row, or None."""
        return self._objects.get(object_id)

    def remove(self, object_id: str) -> Optional[PCSIObject]:
        """Delete a row (GC sweep)."""
        return self._objects.pop(object_id, None)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def all_ids(self):
        """Snapshot of every live object id."""
        return list(self._objects.keys())
