"""Placement policies: where sandboxes land (§4.1–§4.2).

The paper's central performance claim is that *logical* disaggregation
need not mean *physical* disaggregation: because PCSI sees the task
graph and all state access is explicit, the system can co-locate
composed functions (turning a network hop into a device copy) — or
deliberately scatter them into scavenged capacity to raise cluster
utilization at "good enough" latency. Both are policies behind the same
interface; the experiments ablate them.

Each policy provides the ``placer(resources, platform, preferred_node)``
callable that :class:`~repro.faas.autoscale.WarmPool` consumes.

Policies optionally carry a :class:`~repro.bench.attribution.
LatencyAttributor`: :class:`ObservedPlacement` steers sandboxes toward
the node class with the best *observed* warm latency (falling back to
co-location until enough traces have been folded), closing the
trace → attribution → placement loop.
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster.node import Node
from ..cluster.resources import ResourceVector
from ..cluster.topology import Topology
from ..faas.platforms import PlatformSpec
from ..sim.rng import RandomStream


class PlacementPolicy:
    """Base class: fit-filtering plus a policy-specific choice."""

    name = "base"

    def __init__(self, topology: Topology, attributor=None):
        self.topology = topology
        #: Optional :class:`~repro.bench.attribution.LatencyAttributor`
        #: observation feed. The base policies ignore it; observation-
        #: aware subclasses consult it in :meth:`choose`.
        self.attributor = attributor
        #: Optional :class:`~repro.cluster.health.HealthPlane`, wired
        #: by the kernel after construction. When set, nodes the plane
        #: says to avoid (quarantined gray outliers, suspect/confirmed
        #: nodes) are filtered out of the candidate set — unless that
        #: would leave nothing, in which case degraded capacity beats
        #: no capacity.
        self.health = None

    def candidates(self, resources: ResourceVector,
                   platform: PlatformSpec) -> List[Node]:
        """Live nodes with the device and free capacity."""
        nodes = [n for n in self.topology.live_nodes()
                 if n.has_device(platform.device_kind)
                 and n.can_fit(resources)]
        if self.health is not None and nodes:
            preferred = [n for n in nodes
                         if not self.health.avoid(n.node_id)]
            if preferred:
                nodes = preferred
        return nodes

    def placer(self):
        """The callable handed to warm pools."""
        def place(resources: ResourceVector, platform: PlatformSpec,
                  preferred_node: Optional[str] = None) -> Optional[Node]:
            nodes = self.candidates(resources, platform)
            if not nodes:
                return None
            return self.choose(nodes, resources, platform, preferred_node)
        return place

    def choose(self, nodes: List[Node], resources: ResourceVector,
               platform: PlatformSpec,
               preferred_node: Optional[str]) -> Node:
        raise NotImplementedError


class NaivePlacement(PlacementPolicy):
    """Uniform-random placement that ignores all hints.

    This is the strawman of §4.1: intermediate data always crosses the
    network because producers and consumers land wherever.
    """

    name = "naive"

    def __init__(self, topology: Topology, rng: Optional[RandomStream] = None,
                 attributor=None):
        super().__init__(topology, attributor=attributor)
        self.rng = rng if rng is not None else RandomStream(0, "naive-place")

    def choose(self, nodes, resources, platform, preferred_node):
        return self.rng.choice(nodes)


class ColocatePlacement(PlacementPolicy):
    """Graph-aware placement: honor the co-location hint when possible.

    Preference order: the hinted node itself, then a node in the hinted
    node's rack, then the least-loaded fit (to keep latency low when no
    hint applies).
    """

    name = "colocate"

    def choose(self, nodes, resources, platform, preferred_node):
        if preferred_node is not None:
            for node in nodes:
                if node.node_id == preferred_node:
                    return node
            same_rack = [n for n in nodes
                         if self.topology.same_rack(n.node_id,
                                                    preferred_node)]
            if same_rack:
                return min(same_rack,
                           key=lambda n: n.allocated.dominant_share(
                               n.capacity))
        return min(nodes,
                   key=lambda n: n.allocated.dominant_share(n.capacity))


class ScavengePlacement(PlacementPolicy):
    """Utilization-first placement: pack into the fullest node that fits.

    §4.2: "the provider is free to scavenge underutilized resources from
    around the cluster for each function independently", trading some
    latency for much better packing. Choosing the *most* utilized
    feasible node (best-fit-decreasing flavor) minimizes the number of
    machines kept busy, which is what lets whole servers be reclaimed.
    """

    name = "scavenge"

    def choose(self, nodes, resources, platform, preferred_node):
        return max(nodes,
                   key=lambda n: (n.allocated.dominant_share(n.capacity),
                                  n.node_id))


class SpreadPlacement(PlacementPolicy):
    """Load-balancing placement: always the least utilized node.

    The dedicated-capacity strawman for the efficiency experiment: great
    tail latency, poor packing.
    """

    name = "spread"

    def choose(self, nodes, resources, platform, preferred_node):
        return min(nodes,
                   key=lambda n: (n.allocated.dominant_share(n.capacity),
                                  n.node_id))


class ObservedPlacement(ColocatePlacement):
    """Observation-fed placement: follow the measured best node class.

    When the attached attributor has folded at least its
    ``min_samples`` traces for a node class, candidate nodes are first
    narrowed to the class with the lowest observed warm latency; the
    co-location heuristics then break ties *inside* that class. With no
    attributor, or before any class clears the guard, or when every
    candidate sits in one class, this is exactly
    :class:`ColocatePlacement` — so the policy can be enabled from t=0
    and only starts steering once evidence exists.
    """

    name = "observed"

    def choose(self, nodes, resources, platform, preferred_node):
        narrowed = self._narrow_to_best_class(nodes)
        return super().choose(narrowed, resources, platform,
                              preferred_node)

    def _narrow_to_best_class(self, nodes: List[Node]) -> List[Node]:
        """Candidates in the best observed class, or all of them."""
        att = self.attributor
        if att is None:
            return nodes
        by_class: dict = {}
        for node in nodes:
            by_class.setdefault(att.node_class_fn(node.node_id),
                                []).append(node)
        if len(by_class) < 2:
            return nodes
        best_class = None
        best_latency = None
        for node_class in sorted(by_class):
            if att.samples(node_class=node_class) < att.min_samples:
                continue
            latency = att.node_class_latency(node_class)
            if latency is None:
                continue
            if best_latency is None or latency < best_latency:
                best_class, best_latency = node_class, latency
        if best_class is None:
            return nodes
        return by_class[best_class]


POLICIES = {cls.name: cls for cls in (NaivePlacement, ColocatePlacement,
                                      ScavengePlacement, SpreadPlacement,
                                      ObservedPlacement)}


def make_policy(name: str, topology: Topology,
                rng: Optional[RandomStream] = None,
                attributor=None) -> PlacementPolicy:
    """Instantiate a policy by name."""
    if name not in POLICIES:
        raise KeyError(f"unknown placement policy {name!r}; "
                       f"choose from {sorted(POLICIES)}")
    cls = POLICIES[name]
    if cls is NaivePlacement:
        return cls(topology, rng, attributor=attributor)
    return cls(topology, attributor=attributor)
