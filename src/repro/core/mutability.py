"""Object mutability levels and the Figure 1 transition lattice.

The paper's Figure 1 shows four levels — MUTABLE, APPEND_ONLY,
FIXED_SIZE, IMMUTABLE — with allowable transitions between them. The
text pins the semantics: "IMMUTABLE objects can be implemented with the
proven efficiency and scalability of cloud object storage", and "once
written, the content of an APPEND_ONLY object may be safely cached
anywhere".

We implement the lattice as *monotone restriction*: an object can only
move toward fewer write capabilities, never back. This is the property
all the optimization claims rest on — a cache that observed an object
at APPEND_ONLY may keep its written prefix forever precisely because no
future transition can re-open it for arbitrary writes.

    MUTABLE ──► APPEND_ONLY ──► IMMUTABLE
       │                            ▲
       └──────► FIXED_SIZE ─────────┘

(MUTABLE may also jump straight to IMMUTABLE.)
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, List, Tuple

from .errors import InvalidTransitionError


class Mutability(Enum):
    """The four levels of Figure 1."""

    MUTABLE = "mutable"
    APPEND_ONLY = "append_only"
    FIXED_SIZE = "fixed_size"
    IMMUTABLE = "immutable"


#: Figure 1's allowable transitions (source -> permitted destinations).
ALLOWED_TRANSITIONS: Dict[Mutability, FrozenSet[Mutability]] = {
    Mutability.MUTABLE: frozenset({Mutability.APPEND_ONLY,
                                   Mutability.FIXED_SIZE,
                                   Mutability.IMMUTABLE}),
    Mutability.APPEND_ONLY: frozenset({Mutability.IMMUTABLE}),
    Mutability.FIXED_SIZE: frozenset({Mutability.IMMUTABLE}),
    Mutability.IMMUTABLE: frozenset(),
}


def can_transition(src: Mutability, dst: Mutability) -> bool:
    """True if Figure 1 permits moving from ``src`` to ``dst``."""
    if src == dst:
        return True  # no-op transitions are always fine
    return dst in ALLOWED_TRANSITIONS[src]


def check_transition(src: Mutability, dst: Mutability) -> None:
    """Raise :class:`InvalidTransitionError` unless permitted."""
    if not can_transition(src, dst):
        raise InvalidTransitionError(
            f"mutability cannot move from {src.value} to {dst.value}")


def allows_overwrite(level: Mutability) -> bool:
    """May existing bytes be rewritten in place?"""
    return level in (Mutability.MUTABLE, Mutability.FIXED_SIZE)


def allows_append(level: Mutability) -> bool:
    """May new bytes be added at the end?"""
    return level in (Mutability.MUTABLE, Mutability.APPEND_ONLY)


def allows_resize(level: Mutability) -> bool:
    """May the object's size change at all?"""
    return level in (Mutability.MUTABLE, Mutability.APPEND_ONLY)


def cacheable_fraction(level: Mutability, written: bool) -> float:
    """How much of the object's content a remote cache may retain.

    The payoff of restrictions (§3.3): IMMUTABLE content is fully
    cacheable; APPEND_ONLY's written prefix is stable and cacheable;
    everything else can change under the cache's feet.
    """
    if level == Mutability.IMMUTABLE:
        return 1.0
    if level == Mutability.APPEND_ONLY and written:
        return 1.0  # the prefix observed so far is stable
    return 0.0


def transition_matrix() -> List[Tuple[str, str, bool]]:
    """All (src, dst, allowed) triples — experiment E3's table."""
    rows = []
    for src in Mutability:
        for dst in Mutability:
            rows.append((src.value, dst.value, can_transition(src, dst)))
    return rows


def is_terminal(level: Mutability) -> bool:
    """True if no further (non-trivial) transition is possible."""
    return not ALLOWED_TRANSITIONS[level]
