"""Naming: per-function roots, resolution, and links (§3.2).

PCSI has **no global namespace**. Every function (and every tenant)
sees a directory object as its file-system root, and reaches other
namespaces only through directories passed to it. Resolution is a walk
over directory objects: each step requires the RESOLVE right on the
directory being traversed, and the reference handed back is attenuated
to the rights recorded on the winning entry — names can only narrow
authority.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..security.capabilities import Right
from ..sim.engine import US
from .errors import (
    NamespaceError,
    NotADirectoryError_,
    ObjectNotFoundError,
)
from .objects import DirEntry, ObjectKind, ObjectTable, PCSIObject
from .references import Reference, ReferenceManager
from .unionfs import union_list, union_lookup, whiteout

#: Control-plane cost per resolution step (a metadata lookup).
RESOLVE_STEP_TIME = 2 * US
#: Safety bound on path depth.
MAX_DEPTH = 64


def split_path(path: str) -> List[str]:
    """Split a relative path into components, rejecting absolutes.

    PCSI paths are always relative to some directory reference —
    there is no global root for an absolute path to start from.
    """
    if path.startswith("/"):
        raise NamespaceError(
            "PCSI has no global namespace; paths are root-relative "
            f"(got absolute path {path!r})")
    parts = [p for p in path.split("/") if p not in ("", ".")]
    if any(p == ".." for p in parts):
        raise NamespaceError("'..' traversal is not part of PCSI naming")
    if len(parts) > MAX_DEPTH:
        raise NamespaceError(f"path deeper than {MAX_DEPTH}")
    return parts


class NamespaceManager:
    """Resolution and link management over the object table."""

    def __init__(self, table: ObjectTable, refs: ReferenceManager):
        self.table = table
        self.refs = refs

    # -- resolution --------------------------------------------------------
    def resolve(self, root: Reference, path: str) -> Tuple[Reference, int]:
        """Walk ``path`` from the directory ``root`` references.

        Rights attenuate monotonically: the result carries the
        intersection of the root reference's rights and every entry's
        rights along the walk, and traversal of an intermediate
        directory requires RESOLVE to survive that intersection.
        Returns ``(reference, steps)``; the kernel charges
        ``steps * RESOLVE_STEP_TIME`` of control-plane time.
        """
        parts = split_path(path)
        if not parts:
            return root, 0
        self.refs.check(root, Right.RESOLVE)
        current = self._directory_of(root)
        granted = root.rights
        steps = 0
        for i, name in enumerate(parts):
            entry = union_lookup(self.table, current, name)
            steps += 1
            if entry is None:
                raise ObjectNotFoundError(
                    f"{'/'.join(parts[:i + 1])!r} not found")
            granted = granted & entry.rights
            target = self.table.get(entry.object_id)
            if target is None:
                raise ObjectNotFoundError(entry.object_id)
            if i == len(parts) - 1:
                return self.refs.mint(target.object_id, granted), steps
            if target.kind != ObjectKind.DIRECTORY:
                raise NotADirectoryError_(f"{name!r} is not a directory")
            if not granted & Right.RESOLVE:
                raise NamespaceError(
                    f"no RESOLVE right through {name!r}")
            current = target
        raise AssertionError("unreachable")

    def _directory_of(self, ref: Reference) -> PCSIObject:
        obj = self.table.get(ref.object_id)
        if obj is None:
            raise ObjectNotFoundError(ref.object_id)
        return obj.require_kind(ObjectKind.DIRECTORY)

    # -- link management ------------------------------------------------------
    def link(self, dir_ref: Reference, name: str, target: Reference,
             rights: Optional[Right] = None) -> None:
        """Bind ``name`` in the directory to the target's object.

        The entry's rights default to (and may not exceed) the rights of
        the reference being linked — a name grants at most what the
        linker held.
        """
        if "/" in name or name in ("", ".", ".."):
            raise NamespaceError(f"invalid entry name {name!r}")
        self.refs.check(dir_ref, Right.WRITE)
        directory = self._directory_of(dir_ref)
        granted = rights if rights is not None else target.rights
        if granted & target.rights != granted:
            raise NamespaceError(
                "cannot link with more rights than the reference holds")
        existing = directory.entries.get(name)
        if existing is not None and not existing.whiteout:
            raise NamespaceError(f"name {name!r} already linked")
        directory.entries[name] = DirEntry(object_id=target.object_id,
                                           rights=granted)

    def unlink(self, dir_ref: Reference, name: str) -> None:
        """Remove a name. In a union, lower-layer names get whiteouts."""
        self.refs.check(dir_ref, Right.WRITE)
        directory = self._directory_of(dir_ref)
        entry = directory.entries.get(name)
        if entry is not None and not entry.whiteout:
            del directory.entries[name]
            # If a lower layer still provides the name, hide it.
            if directory.is_union and \
                    union_lookup(self.table, directory, name) is not None:
                whiteout(directory, name)
            return
        if directory.is_union and \
                union_lookup(self.table, directory, name) is not None:
            whiteout(directory, name)
            return
        raise ObjectNotFoundError(f"no entry {name!r}")

    def list_dir(self, dir_ref: Reference) -> List[str]:
        """Names visible in the directory (union-merged)."""
        self.refs.check(dir_ref, Right.READ)
        return union_list(self.table, self._directory_of(dir_ref))
