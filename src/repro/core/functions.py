"""PCSI functions (§3.1): the universal compute interface.

Three properties from the paper, and where this module enforces them:

* **Universal compute interface** — a :class:`FunctionDef` is a name,
  an external contract (argument names), and one or more
  interchangeable :class:`FunctionImpl`\\ s. Re-implementing a function
  (new platform, new hardware) never changes its interface; several
  implementations can be registered *simultaneously* and an optimizer
  picks among them per invocation (:mod:`repro.core.optimizer`).
* **No implicit state** — a function body only touches state through
  its :class:`~repro.core.invoke.FunctionContext` (explicit data-layer
  references) and receives a small pass-by-value request. Nothing
  survives an invocation inside the sandbox.
* **Narrow and heterogeneous implementations** — each impl binds to one
  execution platform and one resource shape, so the scheduler can scale
  and specialize each independently.

Functions themselves are stored as objects in the data layer (§3.1:
"Users store functions themselves as objects"), so invoking a function
requires an EXECUTE reference like any other object access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..cluster.resources import ResourceVector
from ..faas.platforms import PlatformSpec
from .errors import InvocationError

#: Maximum size of the pass-by-value request body (§3.1: "a small
#: pass-by-value request body"); larger inputs must travel as data-layer
#: references.
MAX_INLINE_REQUEST_BYTES = 32 * 1024


@dataclass(frozen=True)
class FunctionImpl:
    """One concrete implementation of a function.

    ``work_ops`` is the abstract work one invocation performs on the
    impl's device; bodies may additionally call ``ctx.compute`` for
    data-dependent work.
    """

    name: str
    platform: PlatformSpec
    resources: ResourceVector
    work_ops: float = 0.0
    #: Estimated state operations per invocation; used only by the
    #: optimizer's cost model, never enforced.
    est_state_calls: int = 4

    def __post_init__(self):
        if self.work_ops < 0:
            raise ValueError("negative work_ops")
        if self.est_state_calls < 0:
            raise ValueError("negative est_state_calls")


#: A function body: a generator function over a FunctionContext.
Body = Callable[["FunctionContext"], Generator]  # noqa: F821 (doc only)


@dataclass
class FunctionDef:
    """The durable definition stored in the data layer."""

    name: str
    impls: List[FunctionImpl] = field(default_factory=list)
    #: Optional programmable body. When None, the default body runs:
    #: read every arg named in ``reads``, compute the impl's work_ops,
    #: write ``output_nbytes`` to every arg named in ``writes``.
    body: Optional[Callable] = None
    reads: List[str] = field(default_factory=list)
    writes: List[str] = field(default_factory=list)
    #: Output size for the default body: either an int or a callable
    #: ``f(input_bytes_total, request) -> int``.
    output_nbytes: Any = 0

    def __post_init__(self):
        if not self.impls:
            raise InvocationError(
                f"function {self.name!r} needs at least one implementation")
        names = [impl.name for impl in self.impls]
        if len(set(names)) != len(names):
            raise InvocationError(
                f"function {self.name!r} has duplicate impl names")

    def impl_named(self, name: str) -> FunctionImpl:
        """Look an implementation up by name."""
        for impl in self.impls:
            if impl.name == name:
                return impl
        raise InvocationError(f"{self.name!r} has no impl {name!r}")

    def replace_impl(self, old_name: str, new_impl: FunctionImpl) -> None:
        """Drop-in replacement (§3.1): swap an implementation without
        touching the function's external interface."""
        for i, impl in enumerate(self.impls):
            if impl.name == old_name:
                self.impls[i] = new_impl
                return
        raise InvocationError(f"{self.name!r} has no impl {old_name!r}")

    def add_impl(self, impl: FunctionImpl) -> None:
        """Register an additional simultaneous implementation."""
        if any(existing.name == impl.name for existing in self.impls):
            raise InvocationError(
                f"{self.name!r} already has impl {impl.name!r}")
        self.impls.append(impl)

    def resolve_output_size(self, input_bytes: int, request: Dict) -> int:
        """Default-body output size."""
        if callable(self.output_nbytes):
            return int(self.output_nbytes(input_bytes, request))
        return int(self.output_nbytes)
