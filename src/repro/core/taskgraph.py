"""Task graphs (§3.1): ahead-of-time composition of functions.

"In addition to invoking individual functions, users can build task
graphs, which opens up optimization opportunities such as pipelining or
physical co-location. Such task graphs can either be specified
ahead-of-time, as in Cloudburst, or dynamically as in Ray or Ciel."

This module is the ahead-of-time form. A graph's stages name functions
and their argument bindings; edges declare producer → consumer
composition. The runner executes stages in dependency order, passing
each consumer the producer's landing node as a co-location hint, and
materializing per-request *intermediate* objects for the data that is
"intended only for the next task". Dynamic graphs need no machinery:
``ctx.invoke`` / ``ctx.invoke_async`` inside a body already spawn
children at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Union

from .errors import InvocationError
from .references import Reference


@dataclass(frozen=True)
class Intermediate:
    """A per-request object created by the runner and shared between
    the stages that name it.

    ``nbytes_hint`` sizes the object for ephemeral-placement decisions;
    actual content size comes from what producers write.
    """

    name: str
    nbytes_hint: int = 0


ArgBinding = Union[Reference, Intermediate]


@dataclass
class Stage:
    """One node of the graph."""

    name: str
    fn_ref: Reference
    args: Dict[str, ArgBinding] = field(default_factory=dict)
    request: Dict[str, Any] = field(default_factory=dict)
    impl_name: Optional[str] = None


class TaskGraph:
    """A DAG of stages with explicit composition edges."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self._stages: Dict[str, Stage] = {}
        self._edges: List[tuple] = []  # (producer, consumer)

    def add_stage(self, name: str, fn_ref: Reference,
                  args: Optional[Dict[str, ArgBinding]] = None,
                  request: Optional[Dict[str, Any]] = None,
                  impl_name: Optional[str] = None) -> Stage:
        """Add a stage; names must be unique."""
        if name in self._stages:
            raise InvocationError(f"duplicate stage {name!r}")
        stage = Stage(name=name, fn_ref=fn_ref, args=dict(args or {}),
                      request=dict(request or {}), impl_name=impl_name)
        self._stages[name] = stage
        return stage

    def link(self, producer: str, consumer: str) -> None:
        """Declare that ``consumer`` composes on ``producer``'s output."""
        for stage in (producer, consumer):
            if stage not in self._stages:
                raise InvocationError(f"unknown stage {stage!r}")
        if producer == consumer:
            raise InvocationError("a stage cannot feed itself")
        self._edges.append((producer, consumer))

    @property
    def stages(self) -> List[Stage]:
        return list(self._stages.values())

    def stage(self, name: str) -> Stage:
        return self._stages[name]

    def upstream_of(self, name: str) -> List[str]:
        """Producers feeding a stage."""
        return [p for p, c in self._edges if c == name]

    def intermediates(self) -> List[Intermediate]:
        """All distinct intermediates referenced by any stage."""
        seen: Dict[str, Intermediate] = {}
        for stage in self._stages.values():
            for binding in stage.args.values():
                if isinstance(binding, Intermediate):
                    if binding.name in seen and seen[binding.name] != binding:
                        raise InvocationError(
                            f"intermediate {binding.name!r} declared "
                            "inconsistently")
                    seen[binding.name] = binding
        return list(seen.values())

    def topo_order(self) -> List[str]:
        """Stage names in dependency order; raises on cycles."""
        indegree = {name: 0 for name in self._stages}
        for _p, c in self._edges:
            indegree[c] += 1
        ready = [name for name in self._stages if indegree[name] == 0]
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for p, c in self._edges:
                if p == name:
                    indegree[c] -= 1
                    if indegree[c] == 0:
                        ready.append(c)
        if len(order) != len(self._stages):
            raise InvocationError(f"graph {self.name!r} has a cycle")
        return order


@dataclass
class GraphResult:
    """Outcome of one graph execution."""

    results: Dict[str, Any]
    latency: float
    placements: Dict[str, str]        # stage -> executor node
    intermediate_refs: Dict[str, Reference]

    def colocated(self, a: str, b: str) -> bool:
        """Did stages a and b land on the same machine?"""
        return self.placements[a] == self.placements[b]
