"""Usage metering and cost attribution.

A :class:`CostMeter` accumulates USD line items by category; a
:class:`ProvisionedFleet` integrates server-seconds over virtual time
(the cost a Kubernetes-style always-on deployment pays even when idle —
experiment E13's denominator).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import Simulator
from .pricing import DEFAULT_PRICES, PriceBook


class CostMeter:
    """Accumulates costs by category."""

    def __init__(self, prices: Optional[PriceBook] = None):
        self.prices = prices if prices is not None else DEFAULT_PRICES
        self._usd: Dict[str, float] = {}
        self._units: Dict[str, float] = {}

    def add(self, category: str, usd: float, units: float = 1.0) -> None:
        """Record a line item."""
        if usd < 0:
            raise ValueError("negative cost")
        self._usd[category] = self._usd.get(category, 0.0) + usd
        self._units[category] = self._units.get(category, 0.0) + units

    # -- typed conveniences --------------------------------------------------
    def kv_read(self, n: int = 1) -> None:
        self.add("kv.read", self.prices.kv_read(n), n)

    def kv_write(self, n: int = 1) -> None:
        self.add("kv.write", self.prices.kv_write(n), n)

    def object_get(self, n: int = 1) -> None:
        self.add("object.get", self.prices.object_get(n), n)

    def object_put(self, n: int = 1) -> None:
        self.add("object.put", self.prices.object_put(n), n)

    def invocation(self, duration_s: float, memory_gb: float,
                   gpus: int = 0) -> None:
        """One serverless invocation: request fee + metered compute."""
        self.add("compute.requests", self.prices.invocations(1), 1)
        self.add("compute.duration",
                 self.prices.compute(duration_s, memory_gb), duration_s)
        if gpus:
            self.add("compute.gpu", self.prices.gpu_time(duration_s, gpus),
                     duration_s)

    def provisioned(self, duration_s: float, servers: float = 1.0,
                    gpu: bool = False) -> None:
        self.add("provisioned.gpu" if gpu else "provisioned.servers",
                 self.prices.provisioned(duration_s, servers, gpu),
                 duration_s * servers)

    def egress(self, nbytes: float) -> None:
        self.add("network.egress", self.prices.egress(nbytes), nbytes)

    # -- reporting ------------------------------------------------------------
    @property
    def total_usd(self) -> float:
        """Grand total across categories."""
        return sum(self._usd.values())

    def breakdown(self) -> Dict[str, float]:
        """USD by category, sorted by name."""
        return dict(sorted(self._usd.items()))

    def units(self, category: str) -> float:
        """Accumulated units (requests, seconds, bytes) in a category."""
        return self._units.get(category, 0.0)

    def usd(self, category: str) -> float:
        """USD accumulated in one category."""
        return self._usd.get(category, 0.0)

    def per_million(self, category: str) -> float:
        """USD per million units in a category (the paper's unit)."""
        units = self._units.get(category, 0.0)
        if units == 0:
            return 0.0
        return self._usd[category] / units * 1e6


class ProvisionedFleet:
    """Integrates provisioned server time into a meter.

    Call :meth:`scale_to` whenever the fleet size changes; call
    :meth:`settle` at the end of a run to bill the final interval.
    """

    def __init__(self, sim: Simulator, meter: CostMeter, name: str,
                 servers: float = 0.0, gpu: bool = False):
        self.sim = sim
        self.meter = meter
        self.name = name
        self.gpu = gpu
        self._servers = servers
        self._since = sim.now

    @property
    def servers(self) -> float:
        """Current fleet size."""
        return self._servers

    def scale_to(self, servers: float) -> None:
        """Bill the elapsed interval, then change the fleet size."""
        if servers < 0:
            raise ValueError("negative fleet size")
        self._bill()
        self._servers = servers

    def settle(self) -> None:
        """Bill any un-billed tail interval (idempotent)."""
        self._bill()

    def _bill(self) -> None:
        elapsed = self.sim.now - self._since
        if elapsed > 0 and self._servers > 0:
            self.meter.provisioned(elapsed, self._servers, gpu=self.gpu)
        self._since = self.sim.now
