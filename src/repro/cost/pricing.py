"""Cloud price book.

Prices follow 2021-era public list prices of the big managed services;
the KV read price is set to the paper's own measured figure (Section
2.1: fetching 1 KB from DynamoDB costs 0.18 USD per million requests,
vs 0.003 USD per million for the same fetch over NFS from a provisioned
server). The paper speculates the gap partly reflects the provider
passing the cost of the RESTful front end on to the customer — the
managed-KV model in :mod:`repro.storage.kvstore` makes that structure
explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seconds per billing hour / month, for conversions.
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_MONTH = 30 * 24 * 3600.0


@dataclass(frozen=True)
class PriceBook:
    """USD prices for metered cloud resources."""

    # Managed, pay-per-request services.
    kv_read_per_million: float = 0.18          # paper's DynamoDB figure
    kv_write_per_million: float = 0.90
    object_get_per_million: float = 0.40
    object_put_per_million: float = 5.00
    # Serverless compute.
    invocation_per_million: float = 0.20
    compute_gb_second: float = 1.6667e-5       # FaaS GB-s
    gpu_second: float = 9.0e-4                 # accelerator surcharge
    # Storage & network.
    storage_gb_month: float = 0.023
    egress_per_gb: float = 0.09
    # Provisioned servers (per wall-clock hour, whether busy or idle).
    server_hour: float = 0.10
    gpu_server_hour: float = 3.00

    def kv_read(self, n: int = 1) -> float:
        """Cost of ``n`` managed-KV reads."""
        return n * self.kv_read_per_million / 1e6

    def kv_write(self, n: int = 1) -> float:
        """Cost of ``n`` managed-KV writes."""
        return n * self.kv_write_per_million / 1e6

    def object_get(self, n: int = 1) -> float:
        """Cost of ``n`` object-store GETs."""
        return n * self.object_get_per_million / 1e6

    def object_put(self, n: int = 1) -> float:
        """Cost of ``n`` object-store PUTs."""
        return n * self.object_put_per_million / 1e6

    def invocations(self, n: int = 1) -> float:
        """Per-request cost of ``n`` function invocations."""
        return n * self.invocation_per_million / 1e6

    def compute(self, duration_s: float, memory_gb: float) -> float:
        """Metered FaaS compute cost."""
        if duration_s < 0 or memory_gb < 0:
            raise ValueError("negative usage")
        return duration_s * memory_gb * self.compute_gb_second

    def gpu_time(self, duration_s: float, gpus: int = 1) -> float:
        """Metered accelerator time."""
        if duration_s < 0 or gpus < 0:
            raise ValueError("negative usage")
        return duration_s * gpus * self.gpu_second

    def provisioned(self, duration_s: float, servers: float = 1.0,
                    gpu: bool = False) -> float:
        """Cost of keeping servers allocated for ``duration_s``."""
        if duration_s < 0 or servers < 0:
            raise ValueError("negative usage")
        rate = self.gpu_server_hour if gpu else self.server_hour
        return servers * rate * duration_s / SECONDS_PER_HOUR

    def egress(self, nbytes: float) -> float:
        """Network egress cost."""
        if nbytes < 0:
            raise ValueError("negative usage")
        return self.egress_per_gb * nbytes / 1024 ** 3


#: The default book used across experiments.
DEFAULT_PRICES = PriceBook()
