"""Cost accounting: the price book and usage meters."""

from .accounting import CostMeter, ProvisionedFleet
from .pricing import (
    DEFAULT_PRICES,
    SECONDS_PER_HOUR,
    SECONDS_PER_MONTH,
    PriceBook,
)

__all__ = [
    "PriceBook", "DEFAULT_PRICES",
    "CostMeter", "ProvisionedFleet",
    "SECONDS_PER_HOUR", "SECONDS_PER_MONTH",
]
