"""Tests for small public APIs not exercised elsewhere."""

import pytest

from repro.cluster import DC_2021, Network, build_cluster
from repro.core import PCSICloud
from repro.core.unionfs import layer_of
from repro.crdt import ORSet
from repro.net import Service, SessionTransport, FRAME_ENCODE_TIME
from repro.security import CAPABILITY_CHECK_TIME, CapabilityRegistry, Right
from repro.sim import RandomStream, Simulator


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = sim.spawn(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_rng_randint_bounds_and_shuffle_permutation():
    rng = RandomStream(3, "misc")
    draws = [rng.randint(2, 5) for _ in range(200)]
    assert set(draws) <= {2, 3, 4, 5}
    assert len(set(draws)) == 4
    items = list(range(10))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items


def test_session_per_op_overhead_closed_form():
    sim = Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=2,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    bare = SessionTransport(net)
    assert bare.per_op_overhead() == pytest.approx(2 * FRAME_ENCODE_TIME)
    with_caps = SessionTransport(net, registry=CapabilityRegistry())
    assert with_caps.per_op_overhead() == pytest.approx(
        2 * FRAME_ENCODE_TIME + CAPABILITY_CHECK_TIME)


def test_union_layer_of_reports_owner():
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0)
    lower = cloud.mkdir()
    upper = cloud.mkdir()
    below = cloud.create_object()
    above = cloud.create_object()
    cloud.link(lower, "deep", below)
    cloud.link(upper, "top", above)
    cloud.mount_union(upper, [lower])
    table = cloud.table
    upper_obj = table.get(upper.object_id)
    assert layer_of(table, upper_obj, "top") == upper.object_id
    assert layer_of(table, upper_obj, "deep") == lower.object_id
    assert layer_of(table, upper_obj, "absent") is None


def test_network_is_reachable_states():
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=2,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    assert net.is_reachable("rack0-n0", "rack1-n0")
    part = net.partition({"rack0-n0"}, {"rack1-n0"})
    assert not net.is_reachable("rack0-n0", "rack1-n0")
    assert net.is_reachable("rack0-n0", "rack0-n1")  # unaffected pair
    net.heal(part)
    assert net.is_reachable("rack0-n0", "rack1-n0")
    topo.node("rack1-n0").crash()
    assert not net.is_reachable("rack0-n0", "rack1-n0")


def test_orset_elements_snapshot():
    s = ORSet()
    s.add("a", "r1")
    s.add("b", "r1")
    s.remove("a")
    assert s.elements() == frozenset({"b"})


def test_service_queue_length_visible():
    from repro.net import RequestContext
    sim = Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=2,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    svc = Service(sim, net, "rack0-n0", "slow", concurrency=1,
                  service_time=1.0)

    def handler(ctx):
        yield sim.timeout(0)
        return None

    svc.register("op", handler)
    observed = []

    def caller():
        yield from svc.serve(RequestContext(op="op", body={},
                                            client_node="rack0-n1"))

    def watcher():
        yield sim.timeout(0.5)
        observed.append(svc.queue_length)

    for _ in range(3):
        sim.spawn(caller())
    sim.spawn(watcher())
    sim.run()
    assert observed == [2]  # one in service, two queued at t=0.5
