"""Tests for the stateless token/ACL baseline."""

import pytest

from repro.security import (
    AccessDeniedError,
    AclAuthenticator,
    InvalidTokenError,
    Right,
    Token,
)


def make_auth():
    auth = AclAuthenticator()
    auth.grant("bucket/photos", "alice", Right.READ | Right.WRITE)
    auth.grant("bucket/photos", "bob", Right.READ)
    return auth


def test_valid_token_passes():
    auth = make_auth()
    principal = auth.check_request(Token("alice"), "bucket/photos",
                                   Right.WRITE, now=0.0)
    assert principal == "alice"


def test_insufficient_rights_denied():
    auth = make_auth()
    with pytest.raises(AccessDeniedError):
        auth.check_request(Token("bob"), "bucket/photos", Right.WRITE,
                           now=0.0)


def test_unknown_resource_denied():
    auth = make_auth()
    with pytest.raises(AccessDeniedError):
        auth.check_request(Token("alice"), "bucket/other", Right.READ,
                           now=0.0)


def test_forged_token_rejected():
    auth = make_auth()
    with pytest.raises(InvalidTokenError):
        auth.check_request(Token("alice", signature_valid=False),
                           "bucket/photos", Right.READ, now=0.0)


def test_expired_token_rejected():
    auth = make_auth()
    token = Token("alice", expires_at=10.0)
    auth.check_request(token, "bucket/photos", Right.READ, now=5.0)
    with pytest.raises(InvalidTokenError):
        auth.check_request(token, "bucket/photos", Right.READ, now=11.0)


def test_grants_accumulate():
    auth = AclAuthenticator()
    auth.grant("r", "p", Right.READ)
    auth.grant("r", "p", Right.WRITE)
    auth.authorize("p", "r", Right.READ | Right.WRITE)


def test_revoke_principal():
    auth = make_auth()
    auth.revoke_principal("bucket/photos", "bob")
    with pytest.raises(AccessDeniedError):
        auth.authorize("bob", "bucket/photos", Right.READ)


def test_every_check_is_counted():
    """The statelessness tax is per-request: each check increments."""
    auth = make_auth()
    for _ in range(7):
        auth.check_request(Token("alice"), "bucket/photos", Right.READ,
                           now=0.0)
    assert auth.checks_performed == 7
