"""Tests for the capability model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.security import (
    AccessDeniedError,
    CapabilityRegistry,
    RevokedCapabilityError,
    Right,
)


def test_mint_grants_all_rights_by_default():
    reg = CapabilityRegistry()
    cap = reg.mint("obj1")
    for right in Right:
        assert cap.allows(right)


def test_check_passes_and_fails():
    reg = CapabilityRegistry()
    cap = reg.mint("obj1", Right.READ)
    reg.check(cap, Right.READ)
    with pytest.raises(AccessDeniedError):
        reg.check(cap, Right.WRITE)


def test_attenuation_produces_subset():
    reg = CapabilityRegistry()
    root = reg.mint("obj1", Right.READ | Right.WRITE | Right.MINT)
    child = root.attenuate(Right.READ)
    assert child.allows(Right.READ)
    assert not child.allows(Right.WRITE)
    assert not child.allows(Right.MINT)
    assert child.object_id == "obj1"


def test_attenuation_cannot_amplify():
    reg = CapabilityRegistry()
    root = reg.mint("obj1", Right.READ | Right.MINT)
    with pytest.raises(AccessDeniedError):
        root.attenuate(Right.WRITE)


def test_attenuation_requires_mint_right():
    reg = CapabilityRegistry()
    cap = reg.mint("obj1", Right.READ)
    with pytest.raises(AccessDeniedError):
        cap.attenuate(Right.READ)


def test_revocation_is_transitive():
    reg = CapabilityRegistry()
    root = reg.mint("obj1", Right.READ | Right.MINT)
    child = root.attenuate(Right.READ | Right.MINT)
    grandchild = child.attenuate(Right.READ)
    reg.revoke(child)
    assert root.allows(Right.READ)
    assert not child.allows(Right.READ)
    assert not grandchild.allows(Right.READ)
    with pytest.raises(RevokedCapabilityError):
        reg.check(grandchild, Right.READ)


def test_revoking_root_kills_whole_tree():
    reg = CapabilityRegistry()
    root = reg.mint("obj1", Right.all())
    kids = [root.attenuate(Right.READ | Right.MINT) for _ in range(3)]
    reg.revoke(root)
    assert all(not k.allows(Right.READ) for k in kids)


def test_live_count_tracks_revocation():
    reg = CapabilityRegistry()
    root = reg.mint("a", Right.all())
    child = root.attenuate(Right.READ)
    assert reg.live_count == 2
    reg.revoke(root)
    assert reg.live_count == 0


@given(st.sets(st.sampled_from([Right.READ, Right.WRITE, Right.APPEND,
                                Right.EXECUTE, Right.RESOLVE]),
               min_size=1))
def test_attenuation_chain_monotone(rights_set):
    """Property: no attenuation chain can ever regain a dropped right."""
    reg = CapabilityRegistry()
    full = Right.all()
    cap = reg.mint("obj", full)
    requested = Right.MINT
    for r in rights_set:
        requested |= r
    child = cap.attenuate(requested)
    # Drop one right and verify no descendant can have it again.
    dropped = next(iter(rights_set))
    narrower = requested & ~dropped
    grand = child.attenuate(narrower)
    assert not grand.allows(dropped)
    if grand.allows(Right.MINT):
        with pytest.raises(AccessDeniedError):
            grand.attenuate(narrower | dropped)
