"""Tests for arrival processes, the load driver, and Zipf keys."""

import pytest

from repro.sim import MS, RandomStream, Simulator
from repro.workloads import (
    LoadDriver,
    ZipfKeys,
    bursty_rate,
    constant_rate,
    diurnal_rate,
)


# ----------------------------------------------------------------- rate fns
def test_constant_rate():
    rate = constant_rate(10.0)
    assert rate(0) == rate(1000) == 10.0
    with pytest.raises(ValueError):
        constant_rate(0)


def test_bursty_rate_phases():
    rate = bursty_rate(base=1.0, burst=100.0, period=10.0,
                       burst_fraction=0.2)
    assert rate(0.5) == 100.0   # inside the burst window
    assert rate(5.0) == 1.0     # outside
    assert rate(10.5) == 100.0  # next period's burst
    with pytest.raises(ValueError):
        bursty_rate(1.0, 10.0, 10.0, burst_fraction=1.5)


def test_diurnal_rate_bounds():
    rate = diurnal_rate(low=2.0, high=10.0, period=100.0)
    values = [rate(t) for t in range(0, 100, 5)]
    assert min(values) >= 2.0 - 1e-9
    assert max(values) <= 10.0 + 1e-9
    with pytest.raises(ValueError):
        diurnal_rate(5.0, 1.0)


# --------------------------------------------------------------- LoadDriver
def test_driver_offers_approximately_rate_times_horizon():
    sim = Simulator()
    driver = LoadDriver(sim, RandomStream(1, "t"), constant_rate(100.0),
                        horizon=50.0)

    def handler(i):
        yield sim.timeout(1 * MS)

    driver.start(handler)
    sim.run()
    assert 4000 < driver.offered < 6000
    assert driver.completed == driver.offered
    assert driver.failed == 0


def test_driver_records_latencies():
    sim = Simulator()
    driver = LoadDriver(sim, RandomStream(2, "t"), constant_rate(10.0),
                        horizon=10.0)

    def handler(i):
        yield sim.timeout(5 * MS)

    driver.start(handler)
    sim.run()
    assert driver.latencies.mean == pytest.approx(5 * MS)
    summary = driver.summary()
    assert summary["offered"] == driver.offered
    assert summary["p99"] == pytest.approx(5 * MS)


def test_driver_absorbs_failures():
    sim = Simulator()
    driver = LoadDriver(sim, RandomStream(3, "t"), constant_rate(10.0),
                        horizon=5.0)

    def handler(i):
        yield sim.timeout(1 * MS)
        if i % 2 == 0:
            raise RuntimeError("boom")

    driver.start(handler)
    sim.run()
    assert driver.failed > 0
    assert driver.completed + driver.failed == driver.offered


def test_driver_open_loop_overlaps_requests():
    """Open loop: arrivals don't wait for completions."""
    sim = Simulator()
    driver = LoadDriver(sim, RandomStream(4, "t"), constant_rate(100.0),
                        horizon=2.0)
    peak = [0]

    def handler(i):
        peak[0] = max(peak[0], driver._outstanding)
        yield sim.timeout(0.5)  # far longer than the 10ms inter-arrival

    driver.start(handler)
    sim.run()
    assert peak[0] > 10


def test_driver_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        LoadDriver(sim, RandomStream(0, "t"), constant_rate(1.0),
                   horizon=0)


# ------------------------------------------------------------------ ZipfKeys
def test_zipf_keys_skewed():
    keys = ZipfKeys(RandomStream(5, "z"), n_keys=20, alpha=1.2)
    counts = {}
    for _ in range(5000):
        k = keys.sample()
        counts[k] = counts.get(k, 0) + 1
    assert counts["key-0"] > counts.get("key-10", 0)
    assert counts["key-0"] > 0.15 * 5000


def test_zipf_helpers():
    keys = ZipfKeys(RandomStream(0, "z"), n_keys=5)
    assert keys.all_keys() == [f"key-{i}" for i in range(5)]
    assert keys.hottest(2) == ["key-0", "key-1"]
    with pytest.raises(ValueError):
        keys.hottest(0)
    with pytest.raises(ValueError):
        ZipfKeys(RandomStream(0, "z"), n_keys=0)
