"""Tests for arrival processes, the load driver, and Zipf keys."""

import pytest

from repro.sim import MS, RandomStream, Simulator
from repro.workloads import (
    LoadDriver,
    OpenLoopDriver,
    TenantMix,
    TenantSpec,
    ZipfKeys,
    bursty_rate,
    constant_rate,
    diurnal_rate,
    phase_shift,
)


# ----------------------------------------------------------------- rate fns
def test_constant_rate():
    rate = constant_rate(10.0)
    assert rate(0) == rate(1000) == 10.0
    with pytest.raises(ValueError):
        constant_rate(0)


def test_bursty_rate_phases():
    rate = bursty_rate(base=1.0, burst=100.0, period=10.0,
                       burst_fraction=0.2)
    assert rate(0.5) == 100.0   # inside the burst window
    assert rate(5.0) == 1.0     # outside
    assert rate(10.5) == 100.0  # next period's burst
    with pytest.raises(ValueError):
        bursty_rate(1.0, 10.0, 10.0, burst_fraction=1.5)


def test_diurnal_rate_bounds():
    rate = diurnal_rate(low=2.0, high=10.0, period=100.0)
    values = [rate(t) for t in range(0, 100, 5)]
    assert min(values) >= 2.0 - 1e-9
    assert max(values) <= 10.0 + 1e-9
    with pytest.raises(ValueError):
        diurnal_rate(5.0, 1.0)


def test_bursty_rate_is_periodic():
    rate = bursty_rate(base=2.0, burst=50.0, period=7.5,
                       burst_fraction=0.3)
    for t in (0.0, 1.1, 2.4, 5.0, 7.4):
        assert rate(t) == rate(t + 7.5) == rate(t + 75.0)


def test_diurnal_rate_is_periodic():
    rate = diurnal_rate(low=1.0, high=9.0, period=40.0)
    for t in (0.0, 3.0, 13.7, 25.0):
        assert rate(t) == pytest.approx(rate(t + 40.0))
        assert rate(t) == pytest.approx(rate(t + 400.0))


def test_phase_shift_translates_rate_function():
    rate = bursty_rate(base=1.0, burst=100.0, period=10.0,
                       burst_fraction=0.2)
    shifted = phase_shift(rate, 5.0)
    for t in (0.0, 0.5, 3.0, 6.0, 9.9):
        assert shifted(t) == rate(t + 5.0)


# --------------------------------------------------------------- TenantMix
def test_tenant_mix_uniform():
    mix = TenantMix.uniform(12, rate=5.0)
    assert len(mix) == 12
    assert mix.tenants == sorted(mix.tenants)
    assert mix.tenants[0] == "tenant00"
    assert mix.total_rate(0.0) == pytest.approx(60.0)
    assert mix.total_rate(123.0) == pytest.approx(60.0)


def test_tenant_mix_seeded_is_deterministic_and_heterogeneous():
    a = TenantMix.seeded(50, rate=4.0, rng=RandomStream(9, "mix"),
                         period=30.0)
    b = TenantMix.seeded(50, rate=4.0, rng=RandomStream(9, "mix"),
                         period=30.0)
    assert len(a) == 50
    assert a.tenants == b.tenants
    for sa, sb in zip(a.specs, b.specs):
        for t in (0.0, 7.0, 29.0):
            assert sa.rate_fn(t) == pytest.approx(sb.rate_fn(t))
    # The seeded mix blends patterns: rates must actually vary over time
    # for at least some tenants (bursty/diurnal), not all constant.
    varying = sum(
        1 for s in a.specs
        if abs(s.rate_fn(0.0) - s.rate_fn(11.0)) > 1e-9)
    assert varying > 0


def test_tenant_mix_scaled():
    mix = TenantMix.uniform(4, rate=10.0)
    doubled = mix.scaled(2.0)
    assert doubled.total_rate(0.0) == pytest.approx(80.0)
    # The original is untouched.
    assert mix.total_rate(0.0) == pytest.approx(40.0)
    with pytest.raises(ValueError):
        mix.scaled(0.0)


def test_tenant_mix_validation():
    with pytest.raises(ValueError):
        TenantMix([])
    spec = TenantSpec("t0", constant_rate(1.0))
    with pytest.raises(ValueError):
        TenantMix([spec, TenantSpec("t0", constant_rate(2.0))])
    with pytest.raises(ValueError):
        TenantSpec("t1", constant_rate(1.0), weight=0.0)


# ----------------------------------------------------------- OpenLoopDriver
def _run_open_loop(seed, horizon=5.0, block=False):
    sim = Simulator()
    mix = TenantMix.uniform(6, rate=20.0)
    driver = OpenLoopDriver(sim, RandomStream(seed, "ol"), mix,
                            horizon=horizon)
    parked = sim.event(name="never")

    def make_request(tenant, i):
        if block:
            yield parked
        else:
            yield sim.timeout(2 * MS)

    driver.start(make_request)
    sim.run(until=horizon + 1.0)
    return driver


def test_open_loop_driver_deterministic_under_fixed_seed():
    first = _run_open_loop(11)
    second = _run_open_loop(11)
    assert first.offered == second.offered
    assert first.summary() == second.summary()
    for tenant in first.per_tenant:
        assert (first.per_tenant[tenant].offered
                == second.per_tenant[tenant].offered)
    # A different seed produces a different arrival schedule.
    other = _run_open_loop(12)
    assert other.summary() != first.summary()


def test_open_loop_driver_tracks_per_tenant_offered():
    driver = _run_open_loop(13)
    assert driver.offered == sum(
        s.offered for s in driver.per_tenant.values())
    assert driver.completed == driver.offered  # nothing blocked
    assert driver.in_flight == 0
    # Every tenant at equal rate sees comparable traffic.
    counts = [s.offered for s in driver.per_tenant.values()]
    assert min(counts) > 0


def test_open_loop_driver_in_flight_accounting():
    """Handlers that never finish stay in flight — open loop means the
    driver keeps offering regardless."""
    driver = _run_open_loop(14, block=True)
    assert driver.offered > 0
    assert driver.completed == 0
    assert driver.in_flight == driver.offered
    summary = driver.summary()
    assert summary["in_flight"] == driver.offered
    assert summary["completed"] == 0


def test_load_driver_summary_reports_in_flight():
    sim = Simulator()
    driver = LoadDriver(sim, RandomStream(6, "t"), constant_rate(10.0),
                        horizon=5.0)
    parked = sim.event(name="never")

    def handler(i):
        yield parked

    driver.start(handler)
    sim.run(until=6.0)
    assert driver.in_flight == driver.offered > 0
    assert driver.summary()["in_flight"] == driver.offered


# --------------------------------------------------------------- LoadDriver
def test_driver_offers_approximately_rate_times_horizon():
    sim = Simulator()
    driver = LoadDriver(sim, RandomStream(1, "t"), constant_rate(100.0),
                        horizon=50.0)

    def handler(i):
        yield sim.timeout(1 * MS)

    driver.start(handler)
    sim.run()
    assert 4000 < driver.offered < 6000
    assert driver.completed == driver.offered
    assert driver.failed == 0


def test_driver_records_latencies():
    sim = Simulator()
    driver = LoadDriver(sim, RandomStream(2, "t"), constant_rate(10.0),
                        horizon=10.0)

    def handler(i):
        yield sim.timeout(5 * MS)

    driver.start(handler)
    sim.run()
    assert driver.latencies.mean == pytest.approx(5 * MS)
    summary = driver.summary()
    assert summary["offered"] == driver.offered
    assert summary["p99"] == pytest.approx(5 * MS)


def test_driver_absorbs_failures():
    sim = Simulator()
    driver = LoadDriver(sim, RandomStream(3, "t"), constant_rate(10.0),
                        horizon=5.0)

    def handler(i):
        yield sim.timeout(1 * MS)
        if i % 2 == 0:
            raise RuntimeError("boom")

    driver.start(handler)
    sim.run()
    assert driver.failed > 0
    assert driver.completed + driver.failed == driver.offered


def test_driver_open_loop_overlaps_requests():
    """Open loop: arrivals don't wait for completions."""
    sim = Simulator()
    driver = LoadDriver(sim, RandomStream(4, "t"), constant_rate(100.0),
                        horizon=2.0)
    peak = [0]

    def handler(i):
        peak[0] = max(peak[0], driver._outstanding)
        yield sim.timeout(0.5)  # far longer than the 10ms inter-arrival

    driver.start(handler)
    sim.run()
    assert peak[0] > 10


def test_driver_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        LoadDriver(sim, RandomStream(0, "t"), constant_rate(1.0),
                   horizon=0)


# ------------------------------------------------------------------ ZipfKeys
def test_zipf_keys_skewed():
    keys = ZipfKeys(RandomStream(5, "z"), n_keys=20, alpha=1.2)
    counts = {}
    for _ in range(5000):
        k = keys.sample()
        counts[k] = counts.get(k, 0) + 1
    assert counts["key-0"] > counts.get("key-10", 0)
    assert counts["key-0"] > 0.15 * 5000


def test_zipf_helpers():
    keys = ZipfKeys(RandomStream(0, "z"), n_keys=5)
    assert keys.all_keys() == [f"key-{i}" for i in range(5)]
    assert keys.hottest(2) == ["key-0", "key-1"]
    with pytest.raises(ValueError):
        keys.hottest(0)
    with pytest.raises(ValueError):
        ZipfKeys(RandomStream(0, "z"), n_keys=0)
