"""Tests for the streaming (pipelined) transform workload."""

import pytest

from repro.core import PCSICloud
from repro.workloads.streaming import StreamingConfig, StreamingTransform


def make_cloud():
    return PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                     seed=12, keep_alive=600.0)


def test_config_validation():
    with pytest.raises(ValueError):
        StreamingConfig(chunks=0)
    with pytest.raises(ValueError):
        StreamingConfig(input_nbytes=4, chunks=8)


def test_sequential_and_pipelined_produce_same_output():
    cfg = StreamingConfig(input_nbytes=1024 * 1024, chunks=4,
                          stage_work=5e8)
    cloud = make_cloud()
    transform = StreamingTransform(cloud, cfg)
    client = cloud.client_node()

    def flow():
        seq = yield from transform.run_sequential(client)
        sink_after_seq = cloud.table.get(transform.sink.object_id).size
        piped = yield from transform.run_pipelined(client)
        sink_after_pipe = cloud.table.get(transform.sink.object_id).size
        return seq, piped, sink_after_seq, sink_after_pipe

    seq, piped, size_seq, size_pipe = cloud.run_process(flow())
    assert size_seq == cfg.input_nbytes
    assert size_pipe == cfg.input_nbytes
    assert seq > 0 and piped > 0


def test_pipelined_beats_sequential_when_warm():
    cfg = StreamingConfig(input_nbytes=8 * 1024 * 1024, chunks=8,
                          stage_work=4e9)
    cloud = make_cloud()
    transform = StreamingTransform(cloud, cfg)
    client = cloud.client_node()

    def flow():
        # Warm both deployments first (cold starts would swamp it).
        yield from transform.run_sequential(client)
        yield from transform.run_pipelined(client)
        seq = yield from transform.run_sequential(client)
        piped = yield from transform.run_pipelined(client)
        return seq, piped

    seq, piped = cloud.run_process(flow())
    assert piped < seq


def test_stream_chunks_flow_through_fifo_in_order():
    cfg = StreamingConfig(input_nbytes=64 * 1024, chunks=4,
                          stage_work=1e8)
    cloud = make_cloud()
    transform = StreamingTransform(cloud, cfg)
    client = cloud.client_node()

    def flow():
        makespan = yield from transform.run_pipelined(client)
        return makespan

    cloud.run_process(flow())
    decode = [i for i in cloud.scheduler.history
              if i.fn_name == "stream-decode"]
    encode = [i for i in cloud.scheduler.history
              if i.fn_name == "stream-encode"]
    assert len(decode) == len(encode) == 1
    assert decode[0].result == {"chunks": 4}
    assert encode[0].result == {"bytes": cfg.input_nbytes}
    # Genuine overlap: the consumer finished shortly after the producer,
    # not a full stage-time later.
    gap = encode[0].finished_at - decode[0].finished_at
    assert gap < decode[0].service_time / 2
