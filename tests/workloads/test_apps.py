"""Integration tests for the Figure 2 pipeline, analytics, and KV apps."""

import pytest

from repro.core import Consistency, Mutability, PCSICloud
from repro.sim import MS, RandomStream
from repro.workloads import (
    AnalyticsConfig,
    AnalyticsJob,
    KVWorkload,
    KVWorkloadConfig,
    ModelServingApp,
    ModelServingConfig,
    monolith_stages,
)

SMALL_CFG = ModelServingConfig(upload_nbytes=64 * 1024,
                               weights_nbytes=4 * 1024 * 1024)


def make_cloud(**kwargs):
    kwargs.setdefault("seed", 17)
    kwargs.setdefault("keep_alive", 600.0)
    return PCSICloud(**kwargs)


# --------------------------------------------------------------- Figure 2
def test_pipeline_serves_requests():
    cloud = make_cloud()
    app = ModelServingApp(cloud, SMALL_CFG)
    client = cloud.client_node()

    def flow():
        lat1, res1 = yield from app.serve_one(client)
        lat2, res2 = yield from app.serve_one(client)
        return lat1, lat2, res1, res2

    lat1, lat2, res1, res2 = cloud.run_process(flow())
    assert lat2 < lat1  # warm path
    assert res2.results["infer"]["weights"] == "v1"
    assert set(res2.results) == {"preprocess", "infer", "postprocess"}


def test_pipeline_state_layout():
    cloud = make_cloud()
    app = ModelServingApp(cloud, SMALL_CFG)
    assert cloud.listdir(app.root) == ["metrics", "models", "uploads.log",
                                       "weights.ptr"]
    assert cloud.mutability_of(app.metrics_obj) == Mutability.APPEND_ONLY
    weights_ref = cloud.run_process(cloud.resolve(app.root, "models/v1"))
    assert cloud.mutability_of(weights_ref) == Mutability.IMMUTABLE


def test_pipeline_colocates_under_colocate_policy():
    cloud = make_cloud(placement="colocate")
    app = ModelServingApp(cloud, SMALL_CFG)
    client = cloud.client_node()

    def flow():
        _lat, result = yield from app.serve_one(client)
        return result

    result = cloud.run_process(flow())
    assert result.colocated("preprocess", "infer")
    assert result.colocated("infer", "postprocess")
    # The anchor carries a GPU.
    node = cloud.topology.node(result.placements["infer"])
    assert node.has_device("gpu")


def test_weights_update_is_strongly_consistent():
    cloud = make_cloud()
    app = ModelServingApp(cloud, SMALL_CFG)
    client = cloud.client_node()

    def flow():
        yield from app.serve_one(client)
        name = yield from app.update_weights(client)
        _lat, result = yield from app.serve_one(client)
        return name, result

    name, result = cloud.run_process(flow())
    assert name == "v2"
    assert result.results["infer"]["weights"] == "v2"


def test_weights_cached_after_first_read():
    cloud = make_cloud()
    app = ModelServingApp(cloud, SMALL_CFG)
    client = cloud.client_node()

    def flow():
        lat_first, _ = yield from app.serve_one(client)
        lat_second, _ = yield from app.serve_one(client)
        return lat_first, lat_second

    cloud.run_process(flow())
    # Second request hit the per-node cache for the immutable weights.
    assert cloud.data.cache_hits >= 1


def test_metrics_and_uploads_accumulate():
    cloud = make_cloud()
    app = ModelServingApp(cloud, SMALL_CFG)
    client = cloud.client_node()

    def flow():
        for _ in range(3):
            yield from app.serve_one(client)

    cloud.run_process(flow())
    metrics_obj = cloud.table.get(app.metrics_obj.object_id)
    log_obj = cloud.table.get(app.uploads_log.object_id)
    assert metrics_obj.size == 3 * SMALL_CFG.metrics_entry_nbytes
    assert log_obj.size == 3 * SMALL_CFG.metrics_entry_nbytes


def test_monolith_stage_specs_match_config():
    stages = monolith_stages(SMALL_CFG)
    assert [s.name for s in stages] == ["preprocess", "infer",
                                        "postprocess"]
    assert stages[1].device_kind == "gpu"
    assert stages[0].output_nbytes == SMALL_CFG.upload_nbytes


# -------------------------------------------------------------- analytics
def test_analytics_job_runs_all_partitions():
    cloud = make_cloud()
    job = AnalyticsJob(cloud, AnalyticsConfig(partitions=4,
                                              partition_nbytes=1024 * 1024))
    client = cloud.client_node()

    def flow():
        latency, result = yield from job.run_once(client)
        return latency, result

    latency, result = cloud.run_process(flow())
    assert result["partitions"] == 4
    mappers = [i for i in cloud.scheduler.history if i.fn_name == "mapper"]
    assert len(mappers) == 4


def test_analytics_mappers_run_concurrently():
    cloud = make_cloud()
    cfg = AnalyticsConfig(partitions=6, partition_nbytes=512 * 1024,
                          map_work=5e9)
    job = AnalyticsJob(cloud, cfg)
    client = cloud.client_node()

    def flow():
        latency, _ = yield from job.run_once(client)
        return latency

    latency = cloud.run_process(flow())
    mappers = [i for i in cloud.scheduler.history if i.fn_name == "mapper"]
    total_service = sum(i.service_time for i in mappers)
    assert latency < total_service * 0.7  # real overlap


def test_analytics_second_run_benefits_from_caching():
    cloud = make_cloud()
    job = AnalyticsJob(cloud, AnalyticsConfig(partitions=4))
    client = cloud.client_node()

    def flow():
        lat1, _ = yield from job.run_once(client)
        lat2, _ = yield from job.run_once(client)
        return lat1, lat2

    lat1, lat2 = cloud.run_process(flow())
    assert lat2 < lat1
    assert cloud.data.cache_hits > 0


# --------------------------------------------------------------------- KV
def test_kv_workload_setup_respects_strong_fraction():
    cloud = make_cloud()
    wl = KVWorkload(cloud, RandomStream(1, "kv"),
                    KVWorkloadConfig(n_objects=20, strong_fraction=0.25))
    assert len(wl.strong_keys) == 5
    strong_ref = wl.objects["key-0"]
    assert cloud.table.get(strong_ref.object_id).consistency == \
        Consistency.LINEARIZABLE
    weak_ref = wl.objects["key-10"]
    assert cloud.table.get(weak_ref.object_id).consistency == \
        Consistency.EVENTUAL


def test_kv_all_strong_override():
    cloud = make_cloud()
    wl = KVWorkload(cloud, RandomStream(1, "kv"),
                    KVWorkloadConfig(n_objects=10), all_strong=True)
    assert len(wl.strong_keys) == 10


def test_kv_mixed_cheaper_than_all_strong():
    """E7's core shape in miniature."""
    results = {}
    for label, all_strong in (("mixed", False), ("strong", True)):
        cloud = make_cloud()
        wl = KVWorkload(cloud, RandomStream(9, "kv"),
                        KVWorkloadConfig(n_objects=32), all_strong=all_strong)
        client = cloud.client_node()

        def flow():
            total = 0.0
            for _ in range(50):
                _kind, latency = yield from wl.one_op(client)
                total += latency
            return total / 50

        results[label] = cloud.run_process(flow())
    assert results["mixed"] < results["strong"]


def test_kv_config_validation():
    with pytest.raises(ValueError):
        KVWorkloadConfig(read_fraction=1.5)
    with pytest.raises(ValueError):
        KVWorkloadConfig(strong_fraction=-0.1)
