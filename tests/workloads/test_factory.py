"""Tests for the factory-automation application."""

import pytest

from repro.core import Consistency, Mutability, PCSICloud
from repro.net import SizedPayload
from repro.sim import RandomStream
from repro.workloads import FactoryApp, FactoryConfig


def make_app(anomaly_rate=1.0, **cfg_kwargs):
    cloud = PCSICloud(racks=3, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=71, keep_alive=600.0)
    cfg = FactoryConfig(anomaly_rate=anomaly_rate, **cfg_kwargs)
    app = FactoryApp(cloud, cfg, rng=RandomStream(71, "factory-test"))
    return cloud, app


def test_state_layout_matches_design():
    cloud, app = make_app()
    assert cloud.listdir(app.root) == ["audit", "bin", "lines",
                                       "setpoints"]
    line0 = cloud.run_process(cloud.resolve(app.root, "lines/line-0"))
    assert cloud.mutability_of(line0) == Mutability.APPEND_ONLY
    assert cloud.table.get(app.setpoints.object_id).consistency == \
        Consistency.LINEARIZABLE


def test_ingest_appends_telemetry_and_raises_alerts():
    cloud, app = make_app(anomaly_rate=1.0)
    client = cloud.client_node()

    def flow():
        r1 = yield from app.sensor_batch(client, line=0)
        r2 = yield from app.sensor_batch(client, line=1)
        return r1, r2

    r1, r2 = cloud.run_process(flow())
    assert r1["anomalous"] and r2["anomalous"]
    assert cloud.table.get(
        app.telemetry[0].object_id).size == app.cfg.batch_nbytes
    assert len(cloud._fifos[app.alerts.object_id]) == 2


def test_controller_actuates_and_audits():
    cloud, app = make_app(anomaly_rate=1.0)
    client = cloud.client_node()
    plant_commands = []

    def plant():
        for _ in range(2):
            command = yield from cloud.external_recv(app.plant_socket)
            plant_commands.append(command.meta)

    def flow():
        for line in (0, 1):
            yield from app.sensor_batch(client, line=line)
        handled = yield from app.control_loop(client, alerts_to_handle=2)
        return handled

    cloud.sim.spawn(plant())
    handled = cloud.run_process(flow())
    cloud.run()
    assert sorted(handled) == [0, 1]
    assert {c["line"] for c in plant_commands} == {0, 1}
    assert all(c["target"] == 70 for c in plant_commands)
    assert cloud.table.get(app.audit.object_id).size == 2 * 96


def test_setpoint_update_reflected_in_next_actuation():
    cloud, app = make_app(anomaly_rate=1.0)
    client = cloud.client_node()
    commands = []

    def plant():
        while True:
            command = yield from cloud.external_recv(app.plant_socket)
            commands.append(command.meta["target"])

    def flow():
        yield from app.sensor_batch(client, line=0)
        yield from app.control_loop(client, alerts_to_handle=1)
        # Operator raises the setpoint (strong write: no torn config).
        yield from cloud.op_write(client, app.setpoints,
                                  SizedPayload(256, meta={"temp": 85}))
        yield from app.sensor_batch(client, line=0)
        yield from app.control_loop(client, alerts_to_handle=1)

    cloud.sim.spawn(plant())
    cloud.run_process(flow())
    assert commands == [70, 85]


def test_bounded_alert_queue_applies_backpressure():
    cloud, app = make_app(anomaly_rate=1.0, alert_queue_depth=2)
    client = cloud.client_node()
    finished = []

    def producer():
        for _ in range(4):  # 4 anomalies into a depth-2 queue
            yield from app.sensor_batch(client, line=0)
        finished.append(cloud.sim.now)

    def late_consumer():
        yield cloud.sim.timeout(5.0)
        yield from app.control_loop(client, alerts_to_handle=4)

    cloud.sim.spawn(producer())
    cloud.sim.spawn(late_consumer())
    cloud.run()
    # The third/fourth batches blocked on the full queue until the
    # controller drained it at t>=5.
    assert finished and finished[0] >= 5.0


def test_crdt_dashboard_counts_alerts():
    cloud, app = make_app(anomaly_rate=1.0)
    app.attach_dashboards(["rack0-n1", "rack1-n1", "rack2-n1"])
    client = cloud.client_node()

    def flow():
        for _ in range(3):
            yield from app.sensor_batch(client, line=0)
        yield from app.control_loop(client, alerts_to_handle=3)

    def plant():
        while True:
            yield from cloud.external_recv(app.plant_socket)

    cloud.sim.spawn(plant())
    cloud.run_process(flow())
    cloud.run()
    assert app.crdt.converged("alerts")
    assert app.crdt.replica_value("rack0-n1", "alerts") == 3
