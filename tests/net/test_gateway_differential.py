"""Differential test: NoAdmission is byte-identical to the seed path.

The pass-through front door must add *nothing* — no events, no spans,
no metrics, no RNG draws — over calling ``cloud.invoke`` directly.
Both stacks run the identical pinned open-loop workload (Poisson
arrivals, alternating with and without deadlines, failures included)
and must produce the same completion log, the same final virtual
time, and the same total event count, in the style of
``tests/sim/test_engine_differential.py``. The overload gate pins the
same identity as a sha256 fingerprint; this test is the readable
version that points at the divergence when it breaks.
"""

from repro.cluster.resources import cpu_task, server_node
from repro.cluster.topology import build_cluster
from repro.core.functions import FunctionImpl
from repro.core.system import PCSICloud
from repro.faas.platforms import WASM
from repro.net.gateway import NoAdmission
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream

SEED = 77
REQUESTS = 30
RATE = 60.0
DEADLINE = 0.12


def _run_front_door(through_gateway: bool):
    """One pinned open-loop run; returns (log, final_now, event_count).

    ``through_gateway=True`` routes every request through the
    :class:`NoAdmission` pass-through; ``False`` calls the scheduler
    path directly. Everything else is identical.
    """
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=2,
                         gpu_nodes_per_rack=0,
                         node_capacity=server_node(cpus=1, memory_gb=4))
    cloud = PCSICloud(sim, seed=SEED, keep_alive=600.0, topology=topo,
                      data_replicas=1,
                      admission="none" if through_gateway else None)
    client = cloud.client_node()
    cloud.scheduler.control_node = client
    fn = cloud.define_function(
        "diff", [FunctionImpl("wasm", WASM,
                              cpu_task(cpus=1, memory_gb=1),
                              work_ops=2e9)])
    rng = RandomStream(SEED, "diff-arrivals")
    log = []

    def request(i):
        start = sim.now
        deadline = DEADLINE if i % 2 else None
        try:
            if through_gateway:
                result = yield from cloud.gateway.submit(
                    client, fn, tenant="t0", deadline=deadline)
            else:
                result = yield from cloud.invoke(client, fn,
                                                 deadline=deadline)
        except Exception as exc:  # noqa: BLE001 - logged outcome
            log.append((i, type(exc).__name__, repr(sim.now - start)))
            return
        log.append((i, "ok", repr(sim.now - start), repr(result)))

    def arrivals():
        for i in range(REQUESTS):
            yield sim.timeout(rng.exponential(1.0 / RATE))
            sim.spawn(request(i), name=f"req-{i}")

    sim.spawn(arrivals(), name="arrivals")
    cloud.run()
    return log, repr(sim.now), sim._seq


def test_noadmission_byte_identical_to_direct_invoke():
    direct = _run_front_door(through_gateway=False)
    passthrough = _run_front_door(through_gateway=True)
    assert passthrough[0] == direct[0]   # every outcome and latency
    assert passthrough[1] == direct[1]   # final virtual time
    assert passthrough[2] == direct[2]   # total simulation events


def test_noadmission_is_deterministic():
    first = _run_front_door(through_gateway=True)
    second = _run_front_door(through_gateway=True)
    assert first == second


def test_noadmission_overload_outcomes_included():
    """The pinned workload must actually exercise the deadline path —
    a differential over all-ok traffic would prove too little."""
    log, _now, _seq = _run_front_door(through_gateway=False)
    kinds = {entry[1] for entry in log}
    assert "ok" in kinds
    assert "DeadlineExceededError" in kinds


def test_noadmission_passes_arguments_through():
    """NoAdmission forwards every invoke kwarg unchanged."""
    sim = Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=2,
                         gpu_nodes_per_rack=0,
                         node_capacity=server_node(cpus=2, memory_gb=8))
    cloud = PCSICloud(sim, seed=1, topology=topo, data_replicas=1,
                      admission="none")
    assert isinstance(cloud.gateway, NoAdmission)
    client = cloud.client_node()
    cloud.scheduler.control_node = client
    fn = cloud.define_function(
        "echo", [FunctionImpl("wasm", WASM,
                              cpu_task(cpus=1, memory_gb=1),
                              work_ops=1e8)])
    results = []

    def flow():
        results.append((yield from cloud.gateway.submit(
            client, fn, tenant="anyone", max_attempts=2)))

    cloud.run_process(flow())
    assert len(results) == 1
