"""Property tests for the admission primitives (token bucket, WFQ).

The gateway's overload guarantees reduce to two mechanism-level
invariants, checked here with Hypothesis over arbitrary adversarial
inputs rather than a few hand-picked schedules:

* a :class:`TokenBucket` never admits more than ``rate * window +
  burst`` requests over *any* window, for *any* arrival pattern; and
* a :class:`WeightedFairQueue` is work-conserving (a live entry is
  always servable) and shares service among continuously backlogged
  tenants in proportion to their weights, within the classic
  start-time-fair-queueing bound of one maximal request per tenant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.gateway import TokenBucket, WeightedFairQueue

#: Slack for float drift in token accounting: the bucket honors a take
#: within an ulp of a whole token, so over thousands of takes the
#: over-admission is bounded well under one request.
EPS = 1e-3


# ------------------------------------------------------------ token bucket
@given(
    rate=st.floats(min_value=0.1, max_value=50.0,
                   allow_nan=False, allow_infinity=False),
    burst=st.floats(min_value=1.0, max_value=20.0,
                    allow_nan=False, allow_infinity=False),
    gaps=st.lists(st.floats(min_value=0.0, max_value=2.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=150),
)
@settings(max_examples=200, deadline=None)
def test_token_bucket_never_over_admits(rate, burst, gaps):
    """Over any window [s, t]: admits <= rate * (t - s) + burst.

    The arrival pattern is arbitrary (bursts of simultaneous arrivals,
    long silences, steady streams); greedily taking at every arrival
    is the adversary's best strategy.
    """
    bucket = TokenBucket(rate, burst, now=0.0)
    now = 0.0
    admits = []  # admission timestamps
    for gap in gaps:
        now += gap
        if bucket.try_take(now):
            admits.append(now)
    # Window from creation:
    assert len(admits) <= rate * now + burst + EPS
    # Every sub-window between two admissions:
    for i, start in enumerate(admits):
        for j in range(i, len(admits)):
            window = admits[j] - start
            count = j - i + 1
            assert count <= rate * window + burst + EPS, (
                f"{count} admits in a {window:.6f}s window "
                f"(rate={rate}, burst={burst})")


@given(
    rate=st.floats(min_value=0.1, max_value=50.0),
    burst=st.floats(min_value=1.0, max_value=20.0),
    n=st.integers(min_value=1, max_value=100),
)
@settings(max_examples=100, deadline=None)
def test_token_bucket_simultaneous_burst_is_capped(rate, burst, n):
    """All-at-once arrivals: exactly floor(burst)-ish admitted."""
    bucket = TokenBucket(rate, burst, now=0.0)
    admitted = sum(1 for _ in range(n) if bucket.try_take(0.0))
    assert admitted <= burst + EPS
    assert admitted == min(n, int(burst + 1e-9))


@given(
    rate=st.floats(min_value=0.1, max_value=50.0),
    burst=st.floats(min_value=1.0, max_value=20.0),
    idle=st.floats(min_value=0.0, max_value=1e4),
)
@settings(max_examples=100, deadline=None)
def test_token_bucket_refill_never_exceeds_burst(rate, burst, idle):
    bucket = TokenBucket(rate, burst, now=0.0)
    assert bucket.try_take(0.0)
    assert bucket.available(idle) <= burst + 1e-12


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(0.0, 5.0)
    with pytest.raises(ValueError):
        TokenBucket(1.0, 0.5)
    bucket = TokenBucket(1.0, 5.0)
    with pytest.raises(ValueError):
        bucket.try_take(0.0, tokens=0)
    with pytest.raises(ValueError):
        bucket.try_take(0.0, tokens=-1)


# ------------------------------------------------------------------- WFQ
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"),
                      st.sampled_from(["a", "b", "c"]),
                      st.floats(min_value=0.1, max_value=10.0)),
            st.tuples(st.just("pop"), st.none(), st.none()),
            st.tuples(st.just("cancel"), st.none(), st.none()),
        ),
        min_size=1, max_size=200),
)
@settings(max_examples=200, deadline=None)
def test_wfq_work_conserving_and_len_counts_live(ops):
    """pop() serves iff a live entry exists; len() never counts dead
    entries; a cancelled entry is never served."""
    q = WeightedFairQueue()
    handles = []
    cancelled_items = set()
    served = []
    live = 0
    seq = 0
    for op, tenant, weight in ops:
        if op == "push":
            handles.append(q.push(tenant, weight, f"item{seq}"))
            seq += 1
            live += 1
        elif op == "cancel" and handles:
            entry = handles.pop(0)
            if q.cancel(entry):
                cancelled_items.add(entry[3])
                live -= 1
        else:
            got = q.pop()
            if live:
                assert got is not None, \
                    "pop() returned None with live entries queued"
                live -= 1
                served.append(got[1])
                # The served entry's handle is now dead.
                handles = [h for h in handles if h[3] != got[1]]
            else:
                assert got is None
        assert len(q) == live
    assert not cancelled_items.intersection(served)


@given(
    weights=st.lists(st.floats(min_value=0.25, max_value=4.0),
                     min_size=2, max_size=4),
    rounds=st.integers(min_value=50, max_value=300),
)
@settings(max_examples=100, deadline=None)
def test_wfq_weighted_share_bounded_under_saturation(weights, rounds):
    """Continuously backlogged tenants receive service proportional to
    weight, within the SFQ fairness bound.

    With unit-cost requests, start-time fair queueing guarantees for
    any two backlogged flows i, j:
    ``|served_i/w_i - served_j/w_j| <= 1/w_i + 1/w_j``.
    """
    q = WeightedFairQueue()
    tenants = [f"t{i}" for i in range(len(weights))]
    served = {t: 0 for t in tenants}
    # Every tenant always has exactly one request queued (backlogged):
    # re-push immediately after each grant.
    for tenant, weight in zip(tenants, weights):
        q.push(tenant, weight, tenant)
    for _ in range(rounds):
        tenant, _item = q.pop()
        served[tenant] += 1
        q.push(tenant, weights[tenants.index(tenant)], tenant)
    for i, ti in enumerate(tenants):
        for j, tj in enumerate(tenants):
            if j <= i:
                continue
            gap = abs(served[ti] / weights[i] - served[tj] / weights[j])
            bound = 1.0 / weights[i] + 1.0 / weights[j]
            assert gap <= bound + 1e-9, (
                f"unfair: {ti} served {served[ti]} (w={weights[i]}), "
                f"{tj} served {served[tj]} (w={weights[j]}), "
                f"normalized gap {gap:.3f} > bound {bound:.3f}")


def test_wfq_serves_by_virtual_finish_time():
    """Lower weight => later virtual finish => served later."""
    q = WeightedFairQueue()
    q.push("slow", 1.0, "s1")
    q.push("fast", 4.0, "f1")
    q.push("fast", 4.0, "f2")
    q.push("fast", 4.0, "f3")
    # fast's first three tags (0.25, 0.5, 0.75) all beat slow's 1.0.
    order = [q.pop()[1] for _ in range(4)]
    assert order == ["f1", "f2", "f3", "s1"]


def test_wfq_validation():
    q = WeightedFairQueue()
    with pytest.raises(ValueError):
        q.push("t", 0.0, "x")
    with pytest.raises(ValueError):
        q.push("t", 1.0, "x", cost=0.0)
    entry = q.push("t", 1.0, "x")
    assert q.cancel(entry)
    assert not q.cancel(entry)  # double-cancel is a no-op
    assert q.pop() is None
