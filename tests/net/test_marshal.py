"""Tests for payload size estimation and the JSON codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import JsonCodec, SizedPayload, estimate_size


def test_scalar_sizes():
    assert estimate_size(None) == 1
    assert estimate_size(True) == 1
    assert estimate_size(42) == 8
    assert estimate_size(3.14) == 8
    assert estimate_size(b"abc") == 3
    assert estimate_size("héllo") == len("héllo".encode())


def test_container_sizes_grow_with_content():
    small = estimate_size({"k": "v"})
    big = estimate_size({"k": "v" * 1000})
    assert big > small + 900


def test_sized_payload_reports_declared_size():
    payload = SizedPayload(1024 * 1024, meta={"kind": "image"})
    assert estimate_size(payload) == 1024 * 1024


def test_sized_payload_validation_and_equality():
    with pytest.raises(ValueError):
        SizedPayload(-1)
    assert SizedPayload(10, meta="x") == SizedPayload(10, meta="x")
    assert SizedPayload(10) != SizedPayload(11)


def test_unknown_type_rejected():
    class Opaque:
        pass

    with pytest.raises(TypeError):
        estimate_size(Opaque())


def test_codec_round_trip():
    codec = JsonCodec()
    obj = {"a": [1, 2, 3], "b": {"nested": True}, "c": None}
    assert codec.decode(codec.encode(obj)) == obj


def test_codec_deterministic():
    codec = JsonCodec()
    assert codec.encode({"b": 1, "a": 2}) == codec.encode({"a": 2, "b": 1})


@given(st.recursive(
    st.none() | st.booleans() | st.integers(-2**31, 2**31)
    | st.floats(allow_nan=False, allow_infinity=False) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20))
def test_estimate_size_total_and_nonnegative(obj):
    assert estimate_size(obj) >= 0
