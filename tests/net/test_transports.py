"""Tests for services, the REST transport, and the session transport."""

import pytest

from repro.cluster import DC_2021, Network, build_cluster
from repro.net import (
    RequestContext,
    RestTransport,
    Service,
    SessionClosedError,
    SessionTransport,
    UnknownOperationError,
)
from repro.security import (
    AccessDeniedError,
    AclAuthenticator,
    CapabilityRegistry,
    Right,
    Token,
)
from repro.sim import MS, US, Simulator


def make_stack(service_time=0.0, concurrency=16):
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=2, gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    service = Service(sim, net, "rack1-n0", "echo", concurrency=concurrency,
                      service_time=service_time)

    def echo(ctx: RequestContext):
        return ctx.body
        yield  # pragma: no cover - makes this a generator function

    service.register("echo", echo)
    return sim, net, service


def run(sim, gen):
    proc = sim.spawn(gen)
    return sim.run_until_event(proc)


# ---------------------------------------------------------------- Service
def test_service_dispatches_to_handler():
    sim, net, service = make_stack()
    rest = RestTransport(net)
    result = run(sim, rest.call("rack0-n0", service, "echo", {"x": 1}))
    assert result == {"x": 1}
    assert service.requests_served == 1


def test_unknown_op_raises():
    sim, net, service = make_stack()
    rest = RestTransport(net)
    with pytest.raises(UnknownOperationError):
        run(sim, rest.call("rack0-n0", service, "nope", {}))


def test_duplicate_handler_rejected():
    sim, net, service = make_stack()
    with pytest.raises(ValueError):
        service.register("echo", lambda ctx: iter(()))


def test_service_on_unknown_node_rejected():
    sim = Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=1, gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    with pytest.raises(ValueError):
        Service(sim, net, "ghost", "svc")


def test_service_concurrency_queues_requests():
    sim, net, service = make_stack(service_time=10 * MS, concurrency=1)
    rest = RestTransport(net)
    done = []

    def client(tag):
        yield from rest.call("rack0-n0", service, "echo", tag)
        done.append((tag, sim.now))

    sim.spawn(client("a"))
    sim.spawn(client("b"))
    sim.run()
    # Second request waits for the first to release the single thread.
    assert done[1][1] - done[0][1] >= 10 * MS * 0.99


# ----------------------------------------------------------------- REST
def test_rest_charges_protocol_overhead():
    sim, net, service = make_stack()
    rest = RestTransport(net)
    run(sim, rest.call("rack0-n0", service, "echo", "ping"))
    latency = net.metrics.histogram("rest.latency").mean
    # Must include 4 marshals (~200us) + HTTP (50us) + network RTT (200us).
    assert latency > 400 * US
    overhead = rest.protocol_overhead(100, 100)
    assert overhead == pytest.approx(4 * DC_2021.marshal_time(612)
                                     + DC_2021.http_protocol)


def test_rest_auth_checked_every_call():
    sim, net, service = make_stack()
    auth = AclAuthenticator()
    auth.grant("echo", "alice", Right.READ)
    rest = RestTransport(net, authenticator=auth)
    token = Token("alice")

    def client():
        for _ in range(5):
            yield from rest.call("rack0-n0", service, "echo", "x",
                                 token=token)

    run(sim, client())
    assert auth.checks_performed == 5
    assert net.metrics.counter("rest.auth_checks").value == 5


def test_rest_denies_without_rights():
    sim, net, service = make_stack()
    auth = AclAuthenticator()
    auth.grant("echo", "alice", Right.READ)
    rest = RestTransport(net, authenticator=auth)
    with pytest.raises(AccessDeniedError):
        run(sim, rest.call("rack0-n0", service, "echo", "x",
                           token=Token("mallory")))


def test_rest_requires_token_when_authenticated():
    sim, net, service = make_stack()
    rest = RestTransport(net, authenticator=AclAuthenticator())
    with pytest.raises(ValueError):
        run(sim, rest.call("rack0-n0", service, "echo", "x"))


# --------------------------------------------------------------- Session
def test_session_connect_then_call():
    sim, net, service = make_stack()
    reg = CapabilityRegistry()
    cap = reg.mint("echo", Right.READ)
    transport = SessionTransport(net, registry=reg)

    def client():
        session = yield from transport.connect("rack0-n0", service, cap)
        result = yield from session.call("echo", "hello")
        return result

    assert run(sim, client()) == "hello"
    assert net.metrics.counter("session.connects").value == 1
    assert net.metrics.counter("session.cap_checks").value == 1


def test_session_per_op_cheaper_than_rest():
    """The E9/E10 claim in miniature: after amortizing the handshake,
    session ops are much cheaper than REST ops."""
    sim, net, service = make_stack()
    auth = AclAuthenticator()
    auth.grant("echo", "alice", Right.READ)
    rest = RestTransport(net, authenticator=auth)
    reg = CapabilityRegistry()
    cap = reg.mint("echo", Right.READ)
    sess_t = SessionTransport(net, registry=reg)

    def client():
        t0 = sim.now
        for _ in range(10):
            yield from rest.call("rack0-n0", service, "echo", "x",
                                 token=Token("alice"))
        rest_time = sim.now - t0

        session = yield from sess_t.connect("rack0-n0", service, cap)
        t1 = sim.now
        for _ in range(10):
            yield from session.call("echo", "x")
        session_time = sim.now - t1
        return rest_time, session_time

    rest_time, session_time = run(sim, client())
    assert session_time < rest_time / 2


def test_closed_session_rejects_calls():
    sim, net, service = make_stack()
    transport = SessionTransport(net)

    def client():
        session = yield from transport.connect("rack0-n0", service)
        session.close()
        yield from session.call("echo", "x")

    with pytest.raises(SessionClosedError):
        run(sim, client())


def test_session_requires_capability_with_registry():
    sim, net, service = make_stack()
    transport = SessionTransport(net, registry=CapabilityRegistry())
    with pytest.raises(ValueError):
        run(sim, transport.connect("rack0-n0", service))


def test_session_cap_rights_enforced_per_op():
    sim, net, service = make_stack()
    reg = CapabilityRegistry()
    cap = reg.mint("echo", Right.READ)
    transport = SessionTransport(net, registry=reg)

    def client():
        session = yield from transport.connect("rack0-n0", service, cap)
        yield from session.call("echo", "x", right=Right.WRITE)

    with pytest.raises(AccessDeniedError):
        run(sim, client())
