"""Tests for the linearizability checker itself, then the checker
applied to the quorum store — the verification the consistency menu's
strong entry rests on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DC_2021, Network, build_cluster
from repro.sim import MS, RandomStream, Simulator
from repro.storage import ReplicatedStore
from repro.verify import History, Operation, check_linearizable, first_violation


# ------------------------------------------------ checker on known histories
def test_empty_history_linearizable():
    assert check_linearizable(History())


def test_sequential_history_linearizable():
    h = History()
    h.record("write", 1, 0.0, 1.0)
    h.record("read", 1, 2.0, 3.0)
    h.record("write", 2, 4.0, 5.0)
    h.record("read", 2, 6.0, 7.0)
    assert check_linearizable(h)


def test_stale_read_not_linearizable():
    h = History()
    h.record("write", 1, 0.0, 1.0)
    h.record("read", None, 2.0, 3.0)  # reads the initial value: stale
    assert not check_linearizable(h)
    assert "not linearizable" in first_violation(h)


def test_concurrent_write_read_either_order_ok():
    h = History()
    h.record("write", 1, 0.0, 2.0)
    h.record("read", None, 0.5, 1.5)  # concurrent: may precede the write
    assert check_linearizable(h)
    h2 = History()
    h2.record("write", 1, 0.0, 2.0)
    h2.record("read", 1, 0.5, 1.5)   # or follow it
    assert check_linearizable(h2)


def test_read_of_never_written_value_rejected():
    h = History()
    h.record("write", 1, 0.0, 1.0)
    h.record("read", 99, 2.0, 3.0)
    assert not check_linearizable(h)


def test_non_monotone_reads_rejected():
    """Two sequential reads observing values in write-reversed order."""
    h = History()
    h.record("write", 1, 0.0, 1.0)
    h.record("write", 2, 2.0, 3.0)
    h.record("read", 2, 4.0, 5.0)
    h.record("read", 1, 6.0, 7.0)  # goes back in time
    assert not check_linearizable(h)


def test_concurrent_writes_both_orders_explored():
    h = History()
    h.record("write", 1, 0.0, 3.0)
    h.record("write", 2, 0.0, 3.0)
    h.record("read", 1, 4.0, 5.0)  # consistent iff write 2 -> write 1
    assert check_linearizable(h)


def test_operation_validation():
    with pytest.raises(ValueError):
        Operation(0, "delete", 1, 0.0, 1.0)
    with pytest.raises(ValueError):
        Operation(0, "read", 1, 2.0, 1.0)


def test_first_violation_none_when_ok():
    h = History()
    h.record("write", 1, 0.0, 1.0)
    assert first_violation(h) is None


@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.floats(0, 5, allow_nan=False)),
                min_size=1, max_size=8))
def test_strictly_sequential_unique_writes_always_linearizable(spans):
    """Property: non-overlapping writes followed by a read of the last
    value always linearize."""
    h = History()
    t = 0.0
    last = None
    for i, (gap, dur) in enumerate(spans):
        start = t + gap
        end = start + dur
        h.record("write", i, start, end)
        t = end + 0.001
        last = i
    h.record("read", last, t + 1.0, t + 2.0)
    assert check_linearizable(h)


# ------------------------------------------- checker against the real store
def _collect_history(consistency: str, seed: int, clients: int = 4,
                     ops_per_client: int = 4) -> History:
    """Run concurrent clients against a ReplicatedStore and record."""
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=4,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    store = ReplicatedStore(sim, net,
                            ["rack0-n0", "rack0-n1", "rack1-n0"],
                            propagation_delay_mean=0.5)  # slow gossip
    history = History()
    rng = RandomStream(seed, "linz")
    counter = [0]

    def client(node: str, stream: RandomStream):
        for _ in range(ops_per_client):
            yield sim.timeout(stream.exponential(2 * MS))
            if stream.bernoulli(0.5):
                counter[0] += 1
                value = counter[0]
                start = sim.now
                if consistency == "linearizable":
                    yield from store.write_linearizable(node, "reg", 8,
                                                        meta=value)
                else:
                    yield from store.write_eventual(node, "reg", 8,
                                                    meta=value)
                history.record("write", value, start, sim.now)
            else:
                start = sim.now
                try:
                    if consistency == "linearizable":
                        record = yield from store.read_linearizable(
                            node, "reg")
                    else:
                        record = yield from store.read_eventual(node, "reg")
                    value = record.meta
                except KeyError:
                    value = None
                history.record("read", value, start, sim.now)

    nodes = [n.node_id for n in topo.nodes]
    for i in range(clients):
        sim.spawn(client(nodes[i % len(nodes)], rng.fork(f"c{i}")))
    sim.run()
    return history


@pytest.mark.parametrize("seed", range(8))
def test_quorum_store_histories_are_linearizable(seed):
    """The strong menu entry delivers what it promises, across seeds
    and interleavings."""
    history = _collect_history("linearizable", seed)
    violation = first_violation(history)
    assert violation is None, violation


def test_eventual_store_can_violate_linearizability():
    """The weak entry is genuinely weaker: across seeds, at least one
    eventual-consistency history is NOT linearizable (stale reads)."""
    violations = 0
    for seed in range(12):
        history = _collect_history("eventual", seed, clients=5,
                                   ops_per_client=5)
        if not check_linearizable(history):
            violations += 1
    assert violations > 0
