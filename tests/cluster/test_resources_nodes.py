"""Tests for resource vectors and nodes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import (
    GB,
    AllocationError,
    Node,
    ResourceVector,
    cpu_task,
    gpu_task,
    server_node,
)
from repro.sim import Simulator


# ------------------------------------------------------------ ResourceVector
def test_vector_add_sub_roundtrip():
    a = ResourceVector(cpus=2, memory=4 * GB, accelerators={"gpu": 1})
    b = ResourceVector(cpus=1, memory=1 * GB)
    total = a + b
    assert total.cpus == 3
    assert total.memory == 5 * GB
    assert total.accelerators == {"gpu": 1}
    back = total - b
    assert back.cpus == a.cpus and back.memory == a.memory


def test_vector_negative_rejected():
    with pytest.raises(ValueError):
        ResourceVector(cpus=-1)
    with pytest.raises(ValueError):
        ResourceVector(memory=-5)
    with pytest.raises(ValueError):
        ResourceVector(accelerators={"gpu": -1})


def test_subtraction_below_zero_rejected():
    a = ResourceVector(cpus=1)
    b = ResourceVector(cpus=2)
    with pytest.raises(ValueError):
        a - b


def test_fits_within():
    cap = server_node(cpus=8, memory_gb=16, gpu=1)
    assert cpu_task(cpus=8, memory_gb=16).fits_within(cap)
    assert not cpu_task(cpus=9).fits_within(cap)
    assert gpu_task(gpus=1).fits_within(cap)
    assert not gpu_task(gpus=2).fits_within(cap)


def test_fits_within_unknown_accelerator():
    cap = server_node(cpus=8, memory_gb=16)
    demand = ResourceVector(cpus=1, accelerators={"tpu": 1})
    assert not demand.fits_within(cap)


def test_dominant_share():
    cap = server_node(cpus=10, memory_gb=100)
    demand = ResourceVector(cpus=5, memory=10 * GB)
    assert demand.dominant_share(cap) == pytest.approx(0.5)
    gpu_demand = ResourceVector(accelerators={"gpu": 1})
    assert gpu_demand.dominant_share(cap) == float("inf")


def test_is_zero_and_describe():
    assert ResourceVector().is_zero()
    assert not cpu_task().is_zero()
    desc = gpu_task(cpus=2, memory_gb=4, gpus=1).describe()
    assert "2cpu" in desc and "gpu:1" in desc


@given(
    st.floats(min_value=0, max_value=64),
    st.floats(min_value=0, max_value=64),
    st.floats(min_value=0, max_value=1e12),
    st.floats(min_value=0, max_value=1e12),
)
def test_add_then_subtract_is_identity(c1, c2, m1, m2):
    a = ResourceVector(cpus=c1, memory=m1)
    b = ResourceVector(cpus=c2, memory=m2)
    back = (a + b) - b
    assert back.cpus == pytest.approx(c1, abs=1e-6)
    assert back.memory == pytest.approx(m1, abs=1e-3)


# ----------------------------------------------------------------------- Node
def _make_node(sim=None, **kwargs):
    sim = sim or Simulator()
    cap = kwargs.pop("capacity", server_node(cpus=8, memory_gb=16, gpu=1))
    return Node(sim, node_id="n0", rack="rack0", capacity=cap, **kwargs)


def test_node_allocate_release_cycle():
    node = _make_node()
    demand = cpu_task(cpus=4, memory_gb=8)
    node.allocate(demand)
    assert node.free.cpus == 4
    node.release(demand)
    assert node.free.cpus == 8


def test_node_over_allocation_rejected():
    node = _make_node()
    node.allocate(cpu_task(cpus=8, memory_gb=1))
    with pytest.raises(AllocationError):
        node.allocate(cpu_task(cpus=1, memory_gb=1))


def test_node_release_more_than_allocated_rejected():
    node = _make_node()
    node.allocate(cpu_task(cpus=1, memory_gb=1))
    with pytest.raises(AllocationError):
        node.release(cpu_task(cpus=2, memory_gb=1))


def test_dead_node_refuses_allocations():
    node = _make_node()
    node.crash()
    assert not node.can_fit(cpu_task())
    with pytest.raises(AllocationError):
        node.allocate(cpu_task())
    node.recover()
    node.allocate(cpu_task())


def test_node_devices():
    node = _make_node()
    assert node.has_device("gpu")
    assert node.has_device("cpu")
    assert not node.has_device("npu")
    assert node.device("gpu").compute_time(1e12) == pytest.approx(1.0)
    with pytest.raises(KeyError):
        node.device("npu")


def test_device_compute_time_validation():
    node = _make_node()
    with pytest.raises(ValueError):
        node.device("gpu").compute_time(-1)


def test_node_cpu_utilization_time_weighted():
    sim = Simulator()
    node = _make_node(sim=sim)

    def run(sim):
        node.allocate(cpu_task(cpus=8, memory_gb=1))  # 100% busy
        yield sim.timeout(10.0)
        node.release(cpu_task(cpus=8, memory_gb=1))
        yield sim.timeout(10.0)

    sim.spawn(run(sim))
    sim.run()
    assert node.cpu_utilization() == pytest.approx(0.5)
