"""Tests for NIC bandwidth contention."""

import pytest

from repro.cluster import DC_2021, Network, build_cluster
from repro.sim import MS, Simulator


def make_net(model_contention=True):
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=2,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021, model_contention=model_contention)
    return sim, net

# 12.5 MB takes 10 ms of wire time at 10 Gb/s.
BIG = 12_500_000


def test_single_transfer_unchanged_by_contention_model():
    """No contention -> same latency as the closed-form model."""
    sim_a, net_a = make_net(model_contention=True)
    sim_b, net_b = make_net(model_contention=False)
    times = []
    for sim, net in ((sim_a, net_a), (sim_b, net_b)):
        def flow(net=net):
            yield from net.transfer("rack0-n0", "rack1-n0", BIG)
        sim.run_until_event(sim.spawn(flow()))
        times.append(sim.now)
    assert times[0] == pytest.approx(times[1])


def test_concurrent_sends_from_one_node_serialize():
    """Two large transfers sharing one NIC take ~2x the wire time."""
    sim, net = make_net()
    done = []

    def sender(tag):
        yield from net.transfer("rack0-n0", "rack1-n0", BIG)
        done.append((tag, sim.now))

    sim.spawn(sender("a"))
    sim.spawn(sender("b"))
    sim.run()
    # First completes after ~10ms wire + latency; second queued behind
    # the first's wire time.
    assert done[0][1] == pytest.approx(10.105 * MS, rel=0.01)
    assert done[1][1] == pytest.approx(20.105 * MS, rel=0.01)


def test_sends_from_different_nodes_do_not_contend():
    sim, net = make_net()
    done = []

    def sender(src):
        yield from net.transfer(src, "rack1-n0", BIG)
        done.append(sim.now)

    sim.spawn(sender("rack0-n0"))
    sim.spawn(sender("rack0-n1"))
    sim.run()
    assert done[0] == pytest.approx(done[1])


def test_small_control_messages_barely_queue():
    """Tiny messages have microsecond wire times: contention is
    negligible, matching the paper's fine-grained-ops focus."""
    sim, net = make_net()
    done = []

    def sender(i):
        yield from net.transfer("rack0-n0", "rack1-n0", 64)
        done.append(sim.now)

    for i in range(10):
        sim.spawn(sender(i))
    sim.run()
    # All ten finish within a whisker of the single-message latency.
    assert max(done) < 1.05 * net.one_way_delay("rack0-n0", "rack1-n0",
                                                64) + 10 * 64 / 1.25e9


def test_local_copies_skip_the_nic():
    sim, net = make_net()
    done = []

    def sender(i):
        yield from net.transfer("rack0-n0", "rack0-n0", BIG)
        done.append(sim.now)

    sim.spawn(sender(0))
    sim.spawn(sender(1))
    sim.run()
    assert done[0] == pytest.approx(done[1])  # no serialization
