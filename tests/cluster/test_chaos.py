"""Tests for the seeded chaos layer: plan expansion and execution."""

import pytest

from repro.cluster import (
    DC_2021,
    ChaosInjector,
    ChaosPlan,
    Network,
    build_cluster,
)
from repro.sim import Simulator
from repro.sim.metrics_registry import LabeledMetricsRegistry


def make_cluster(racks=2, nodes_per_rack=4):
    sim = Simulator()
    topo = build_cluster(sim, racks=racks, nodes_per_rack=nodes_per_rack,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    return sim, topo, net


BUSY_PLAN = dict(seed=9, horizon=20.0, crash_rate=0.5, gray_rate=0.3,
                 partition_rate=0.2)


# -------------------------------------------------------------- validation
def test_plan_validation():
    with pytest.raises(ValueError):
        ChaosPlan(seed=1, horizon=0.0)
    with pytest.raises(ValueError):
        ChaosPlan(seed=1, horizon=1.0, crash_rate=-0.1)
    with pytest.raises(ValueError):
        ChaosPlan(seed=1, horizon=1.0, loss_prob=1.0)
    with pytest.raises(ValueError):
        ChaosPlan(seed=1, horizon=1.0, max_faulty_fraction=0.0)
    with pytest.raises(ValueError):
        ChaosPlan(seed=1, horizon=1.0, gray_slowdown=(0.5, 2.0))
    with pytest.raises(ValueError):
        ChaosPlan(seed=1, horizon=1.0, gray_slowdown=(4.0, 2.0))


# --------------------------------------------------------------- expansion
def test_expansion_is_deterministic_per_seed():
    _, topo, _ = make_cluster()
    plan = ChaosPlan(**BUSY_PLAN)
    assert plan.events_for(topo) == plan.events_for(topo)
    other = ChaosPlan(**{**BUSY_PLAN, "seed": 10})
    assert plan.events_for(topo) != other.events_for(topo)


def test_expansion_is_sorted_and_bounded():
    _, topo, _ = make_cluster()
    events = ChaosPlan(**BUSY_PLAN).events_for(topo)
    assert events
    assert events == sorted(events,
                            key=lambda ev: (ev.at, ev.kind, ev.node))
    for ev in events:
        assert 0.0 <= ev.at < ev.until <= BUSY_PLAN["horizon"]
        assert ev.kind in ("crash", "gray", "partition")


def test_protected_nodes_never_faulted():
    _, topo, _ = make_cluster()
    protected = tuple(n.node_id for n in topo.nodes[:6])
    events = ChaosPlan(**BUSY_PLAN,
                       protected=protected).events_for(topo)
    assert all(ev.node not in protected for ev in events)


def test_protecting_everyone_empties_the_plan():
    _, topo, _ = make_cluster()
    everyone = tuple(n.node_id for n in topo.nodes)
    assert ChaosPlan(**BUSY_PLAN, protected=everyone).events_for(topo) == []


def test_max_faulty_fraction_caps_concurrency():
    """At any instant at most max(1, fraction * eligible) nodes are in
    a fault window — excess arrivals are dropped deterministically."""
    _, topo, _ = make_cluster()
    plan = ChaosPlan(seed=5, horizon=30.0, crash_rate=3.0,
                     downtime_mean=10.0, max_faulty_fraction=0.25)
    events = plan.events_for(topo)
    assert events
    cap = max(1, int(0.25 * len(topo.nodes)))
    for ev in events:
        overlapping = [o for o in events
                       if o.at <= ev.at < o.until]
        assert len(overlapping) <= cap


def test_gray_events_carry_slowdowns_in_range():
    _, topo, _ = make_cluster()
    plan = ChaosPlan(seed=3, horizon=40.0, gray_rate=0.5,
                     gray_slowdown=(2.0, 6.0))
    grays = [ev for ev in plan.events_for(topo) if ev.kind == "gray"]
    assert grays
    for ev in grays:
        assert 2.0 <= ev.slowdown <= 6.0


# --------------------------------------------------------------- execution
def test_execute_schedules_and_heals_everything():
    """After the horizon every crash has recovered, every gray node has
    its speed back, and every partition has healed."""
    sim, topo, net = make_cluster()
    injector = ChaosInjector(sim, topo, net,
                             metrics=LabeledMetricsRegistry())
    plan = ChaosPlan(**BUSY_PLAN, loss_prob=0.05)
    events = injector.execute(plan)
    assert net._loss_prob == 0.05
    sim.run(until=BUSY_PLAN["horizon"] + 1.0)
    assert len(injector.injected) >= len(events)
    for node in topo.nodes:
        assert node.alive
        assert node.slowdown == 1.0
    a, b = topo.nodes[0].node_id, topo.nodes[-1].node_id
    assert net.is_reachable(a, b)


def test_execute_emits_fault_metrics():
    sim, topo, net = make_cluster()
    metrics = LabeledMetricsRegistry()
    injector = ChaosInjector(sim, topo, net, metrics=metrics)
    events = injector.execute(ChaosPlan(**BUSY_PLAN))
    sim.run(until=BUSY_PLAN["horizon"] + 1.0)
    counters = metrics.counters()
    crashes = sum(1 for ev in events if ev.kind == "crash")
    if crashes:
        assert counters.get("fault.crash", 0.0) == crashes
        assert counters.get("fault.recover", 0.0) == crashes


def test_loss_requires_a_network():
    sim, topo, _ = make_cluster()
    injector = ChaosInjector(sim, topo, network=None)
    with pytest.raises(RuntimeError):
        injector.execute(ChaosPlan(seed=1, horizon=1.0, loss_prob=0.1))
