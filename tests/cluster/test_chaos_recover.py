"""ChaosPlan ``recover`` events and the ``start`` warm-up offset.

The new fields must be *additive*: a plan that leaves them at their
defaults expands to exactly the schedule the pre-recover code
produced (each stream draws from its own seeded fork, so adding a
rate-0 stream consumes nothing), and turning a stream on never
perturbs the other streams' draws.
"""

import pytest

from repro.cluster.failures import ChaosInjector, ChaosPlan
from repro.cluster.resources import server_node
from repro.cluster.topology import build_cluster
from repro.sim.engine import Simulator


def make_topo(sim=None):
    return build_cluster(sim or Simulator(), racks=2, nodes_per_rack=4,
                         gpu_nodes_per_rack=0,
                         node_capacity=server_node(cpus=1, memory_gb=4))


def test_recover_stream_does_not_perturb_other_streams():
    topo = make_topo()
    base = ChaosPlan(seed=11, horizon=30.0, crash_rate=0.3,
                     gray_rate=0.2, partition_rate=0.1)
    with_recover = ChaosPlan(seed=11, horizon=30.0, crash_rate=0.3,
                             gray_rate=0.2, partition_rate=0.1,
                             recover_rate=0.5)
    before = base.events_for(topo)
    after = with_recover.events_for(topo)
    recovers = [ev for ev in after if ev.kind == "recover"]
    assert recovers                              # the stream produced
    assert [ev for ev in after if ev.kind != "recover"] == before


def test_recover_events_are_short_scheduled_rejoins():
    topo = make_topo()
    plan = ChaosPlan(seed=7, horizon=60.0, recover_rate=0.5,
                     recover_downtime_mean=0.4)
    events = plan.events_for(topo)
    assert events and all(ev.kind == "recover" for ev in events)
    for ev in events:
        assert 0.0 < ev.at < ev.until <= plan.horizon
        assert ev.node in {n.node_id for n in topo.nodes}
    # Exponential(0.4) downtimes: the mean should be well under the
    # crash stream's default 2.0 s outages.
    downtimes = [ev.until - ev.at for ev in events]
    assert sum(downtimes) / len(downtimes) < 1.5


def test_expansion_is_deterministic_with_new_fields():
    topo = make_topo()
    plan = ChaosPlan(seed=3, horizon=40.0, crash_rate=0.2,
                     recover_rate=0.4, start=5.0)
    assert plan.events_for(topo) == plan.events_for(topo)


def test_start_delays_every_stream():
    topo = make_topo()
    plan = ChaosPlan(seed=5, horizon=40.0, crash_rate=0.5,
                     gray_rate=0.5, recover_rate=0.5, start=10.0)
    events = plan.events_for(topo)
    assert events
    assert all(ev.at >= 10.0 for ev in events)
    # The shifted schedule is the unshifted one's inter-arrival draws
    # pushed right: same seed with start=0 fires strictly earlier.
    first_unshifted = min(
        ev.at for ev in ChaosPlan(seed=5, horizon=40.0, crash_rate=0.5,
                                  gray_rate=0.5, recover_rate=0.5,
                                  ).events_for(topo))
    assert first_unshifted < 10.0


def test_start_must_precede_horizon():
    with pytest.raises(ValueError):
        ChaosPlan(seed=1, horizon=10.0, start=10.0)
    with pytest.raises(ValueError):
        ChaosPlan(seed=1, horizon=10.0, start=-1.0)
    with pytest.raises(ValueError):
        ChaosPlan(seed=1, horizon=10.0, recover_rate=-0.1)


def test_injector_executes_recover_as_crash_with_rejoin():
    sim = Simulator()
    topo = make_topo(sim)
    injector = ChaosInjector(sim, topo)
    plan = ChaosPlan(seed=9, horizon=20.0, recover_rate=0.3,
                     recover_downtime_mean=0.3)
    events = injector.execute(plan)
    assert events
    sim.run()
    # Every recover event crashed its node and brought it back.
    for ev in events:
        assert topo.node(ev.node).alive
    crashes = [e for e in injector.injected if e.startswith("crash:")]
    recovers = [e for e in injector.injected if e.startswith("recover:")]
    assert len(crashes) == len(events)
    assert len(recovers) == len(events)
