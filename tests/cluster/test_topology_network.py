"""Tests for topology construction and the network model."""

import pytest

from repro.cluster import (
    DC_2021,
    FailureInjector,
    Network,
    NetworkUnreachableError,
    Node,
    Topology,
    build_cluster,
    server_node,
)
from repro.sim import Simulator, Tracer


def make_net(racks=2, nodes_per_rack=2, profile=DC_2021, tracer=None):
    sim = Simulator()
    topo = build_cluster(sim, racks=racks, nodes_per_rack=nodes_per_rack,
                         gpu_nodes_per_rack=1)
    net = Network(sim, topo, profile, tracer=tracer)
    return sim, topo, net


# ------------------------------------------------------------------ Topology
def test_build_cluster_shape():
    sim, topo, _ = make_net(racks=3, nodes_per_rack=4)
    assert len(topo.nodes) == 12
    assert len(topo.racks) == 3
    assert len(topo.rack_nodes("rack0")) == 4


def test_gpu_nodes_per_rack():
    sim, topo, _ = make_net(racks=2, nodes_per_rack=3)
    gpu_nodes = topo.nodes_with_device("gpu")
    assert len(gpu_nodes) == 2  # one per rack
    assert all(n.node_id.endswith("-n0") for n in gpu_nodes)


def test_duplicate_node_rejected():
    sim = Simulator()
    topo = Topology()
    topo.add_node(Node(sim, "a", "r0", server_node()))
    with pytest.raises(ValueError):
        topo.add_node(Node(sim, "a", "r0", server_node()))


def test_same_rack_detection():
    sim, topo, _ = make_net()
    assert topo.same_rack("rack0-n0", "rack0-n1")
    assert not topo.same_rack("rack0-n0", "rack1-n0")


def test_build_cluster_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_cluster(sim, racks=0)
    with pytest.raises(ValueError):
        build_cluster(sim, nodes_per_rack=2, gpu_nodes_per_rack=3)


def test_live_nodes_excludes_crashed():
    sim, topo, _ = make_net()
    topo.node("rack0-n0").crash()
    assert len(topo.live_nodes()) == len(topo.nodes) - 1


# ------------------------------------------------------------------- Network
def test_cross_rack_transfer_latency():
    sim, topo, net = make_net()
    results = []

    def proc(sim):
        delay = yield from net.transfer("rack0-n0", "rack1-n0", nbytes=1024)
        results.append((sim.now, delay))

    sim.spawn(proc(sim))
    sim.run()
    expected = (DC_2021.socket_overhead + DC_2021.one_way()
                + DC_2021.wire_time(1024))
    assert results[0][0] == pytest.approx(expected)
    assert results[0][1] == pytest.approx(expected)


def test_same_rack_is_faster_than_cross_rack():
    sim, topo, net = make_net()
    assert (net.one_way_delay("rack0-n0", "rack0-n1", 0)
            < net.one_way_delay("rack0-n0", "rack1-n0", 0))


def test_local_transfer_is_device_copy():
    sim, topo, net = make_net()
    local = net.one_way_delay("rack0-n0", "rack0-n0", 1024)
    remote = net.one_way_delay("rack0-n0", "rack0-n1", 1024)
    assert local == pytest.approx(DC_2021.device_copy_time(1024))
    assert local < remote / 5


def test_round_trip_sums_both_directions():
    sim, topo, net = make_net()
    out = []

    def proc(sim):
        delay = yield from net.round_trip("rack0-n0", "rack1-n0", 100, 1000)
        out.append(delay)

    sim.spawn(proc(sim))
    sim.run()
    expected = (net.one_way_delay("rack0-n0", "rack1-n0", 100)
                + net.one_way_delay("rack1-n0", "rack0-n0", 1000))
    assert out[0] == pytest.approx(expected)


def test_transfer_records_metrics_and_trace():
    tracer = Tracer()
    sim, topo, net = make_net(tracer=tracer)

    def proc(sim):
        yield from net.transfer("rack0-n0", "rack1-n0", nbytes=500)
        yield from net.transfer("rack0-n0", "rack0-n0", nbytes=300)

    sim.spawn(proc(sim))
    sim.run()
    assert net.metrics.counter("network.bytes").value == 500
    assert net.metrics.counter("network.local_bytes").value == 300
    assert tracer.sum_field("net.transfer", "nbytes") == 500
    assert tracer.sum_field("net.local_copy", "nbytes") == 300


def test_fail_fast_unreachable_raises_after_detection_delay():
    sim, topo, net = make_net()
    net.partition({"rack0-n0", "rack0-n1"}, {"rack1-n0", "rack1-n1"})
    errors = []

    def proc(sim):
        try:
            yield from net.transfer("rack0-n0", "rack1-n0", 100)
        except NetworkUnreachableError:
            errors.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert len(errors) == 1
    assert errors[0] == pytest.approx(
        DC_2021.network_rtt * Network.FAIL_FAST_RTT_MULTIPLIER)


def test_location_transparent_send_blocks_until_heal():
    sim, topo, net = make_net()
    part = net.partition({"rack0-n0"}, {"rack1-n0"})
    done = []

    def client(sim):
        yield from net.transfer("rack0-n0", "rack1-n0", 100, fail_fast=False)
        done.append(sim.now)

    def healer(sim):
        yield sim.timeout(30.0)
        net.heal(part)

    sim.spawn(client(sim))
    sim.spawn(healer(sim))
    sim.run()
    assert len(done) == 1
    assert done[0] > 30.0


def test_send_to_dead_node_dropped():
    from repro.sim import Store
    sim, topo, net = make_net()
    topo.node("rack1-n0").crash()
    inbox = Store(sim)
    net.send("rack0-n0", "rack1-n0", inbox, "hello", nbytes=10)
    sim.run()
    assert len(inbox) == 0
    assert net.metrics.counter("network.dropped").value == 1


def test_send_delivers_message():
    from repro.sim import Store
    sim, topo, net = make_net()
    inbox = Store(sim)
    net.send("rack0-n0", "rack1-n0", inbox, {"op": "get"}, nbytes=64)
    sim.run()
    assert inbox.try_get() == {"op": "get"}


def test_partition_overlap_rejected():
    sim, topo, net = make_net()
    with pytest.raises(ValueError):
        net.partition({"rack0-n0"}, {"rack0-n0"})


def test_heal_inactive_partition_rejected():
    sim, topo, net = make_net()
    part = net.partition({"rack0-n0"}, {"rack1-n0"})
    net.heal(part)
    with pytest.raises(ValueError):
        net.heal(part)


# ---------------------------------------------------------- FailureInjector
def test_crash_and_recover_schedule():
    sim, topo, net = make_net()
    inj = FailureInjector(sim, topo, net)
    inj.crash_node("rack0-n0", at=5.0, recover_at=10.0)
    observations = []

    def observer(sim):
        yield sim.timeout(6.0)
        observations.append(("t6", topo.node("rack0-n0").alive))
        yield sim.timeout(5.0)
        observations.append(("t11", topo.node("rack0-n0").alive))

    sim.spawn(observer(sim))
    sim.run()
    assert observations == [("t6", False), ("t11", True)]


def test_location_transparent_client_wakes_on_node_recovery():
    sim, topo, net = make_net()
    inj = FailureInjector(sim, topo, net)
    inj.crash_node("rack1-n0", at=0.0, recover_at=20.0)
    done = []

    def client(sim):
        yield sim.timeout(1.0)  # after the crash
        yield from net.transfer("rack0-n0", "rack1-n0", 64, fail_fast=False)
        done.append(sim.now)

    sim.spawn(client(sim))
    sim.run()
    assert len(done) == 1
    assert done[0] >= 20.0


def test_injector_validation():
    sim, topo, net = make_net()
    inj = FailureInjector(sim, topo, net)
    with pytest.raises(ValueError):
        inj.crash_node("rack0-n0", at=5.0, recover_at=5.0)
    with pytest.raises(ValueError):
        inj.partition({"a"}, {"b"}, at=5.0, heal_at=4.0)
    with pytest.raises(RuntimeError):
        FailureInjector(sim, topo, None).partition({"a"}, {"b"}, at=1.0)
