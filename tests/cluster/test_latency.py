"""Tests for Table 1 latency profiles."""

import pytest

from repro.cluster import DC_2005, DC_2021, FAST_NET, GENERATIONS
from repro.cluster.latency import (
    HTTP_PROTOCOL,
    OBJECT_MARSHALING_1K,
    SOCKET_OVERHEAD,
    profile_named,
    table1_rows,
    with_overrides,
)
from repro.sim import NS, US


def test_table1_values_match_paper():
    """The nine rows of Table 1, exactly as published."""
    rows = {r["operation"]: r["ns"] for r in table1_rows()}
    assert rows["2005 data center network RTT"] == pytest.approx(1_000_000)
    assert rows["2021 data center network RTT"] == pytest.approx(200_000)
    assert rows["Object marshaling (1k)"] == pytest.approx(50_000)
    assert rows["HTTP protocol"] == pytest.approx(50_000)
    assert rows["Socket overhead"] == pytest.approx(5_000)
    assert rows["Emerging fast network RTT"] == pytest.approx(1_000)
    assert rows["KVM Hypervisor call"] == pytest.approx(700)
    assert rows["Linux System call"] == pytest.approx(500)
    assert rows["WebAssembly call - V8 Engine"] == pytest.approx(17)


def test_generations_ordered_fastest_last():
    rtts = [p.network_rtt for p in GENERATIONS]
    assert rtts == sorted(rtts, reverse=True)


def test_paper_ordering_claims():
    """The paper's argument: web-service overheads sit between the 2021
    RTT and the emerging-network RTT; isolation costs are far below."""
    ws_overhead = OBJECT_MARSHALING_1K + HTTP_PROTOCOL + SOCKET_OVERHEAD
    assert ws_overhead < DC_2021.network_rtt
    assert ws_overhead > 100 * FAST_NET.network_rtt
    assert DC_2021.hypervisor_call < ws_overhead / 10
    assert DC_2021.wasm_call < DC_2021.syscall < DC_2021.hypervisor_call


def test_one_way_is_half_rtt():
    assert DC_2021.one_way() == pytest.approx(100 * US)
    assert DC_2021.one_way(same_rack=True) == pytest.approx(50 * US)


def test_marshal_time_scales_with_floor():
    # 1 KB floor: tiny payloads still pay the fixed encoding cost.
    assert DC_2021.marshal_time(10) == pytest.approx(50 * US)
    assert DC_2021.marshal_time(1024) == pytest.approx(50 * US)
    assert DC_2021.marshal_time(4096) == pytest.approx(200 * US)


def test_marshal_time_rejects_negative():
    with pytest.raises(ValueError):
        DC_2021.marshal_time(-1)


def test_wire_time():
    assert DC_2021.wire_time(1_250_000) == pytest.approx(1e-3)  # 1.25MB @10Gb/s
    with pytest.raises(ValueError):
        DC_2021.wire_time(-1)


def test_device_copy_much_faster_than_network_for_small_objects():
    """Section 4.1: co-location turns an RTT into a cudaMemcpy."""
    copy = DC_2021.device_copy_time(1024)
    assert copy < DC_2021.one_way() / 5


def test_profile_lookup():
    assert profile_named("dc-2005") is DC_2005
    with pytest.raises(KeyError):
        profile_named("nonexistent")


def test_with_overrides_makes_copy():
    custom = with_overrides(DC_2021, network_rtt=123 * NS)
    assert custom.network_rtt == 123 * NS
    assert DC_2021.network_rtt == 200_000 * NS
    assert custom.http_protocol == DC_2021.http_protocol
