"""Tests for the co-tenancy interference model."""

import pytest

from repro.cluster import Node, build_cluster, cpu_task, server_node
from repro.faas import CONTAINER, Executor
from repro.sim import Simulator


def test_empty_machine_runs_at_full_speed():
    sim = Simulator()
    node = Node(sim, "n", "r", server_node(cpus=32))
    assert node.interference_factor() == pytest.approx(1.0)


def test_factor_scales_linearly_with_allocation():
    sim = Simulator()
    node = Node(sim, "n", "r", server_node(cpus=32),
                interference_alpha=0.5)
    node.allocate(cpu_task(cpus=16, memory_gb=1))
    assert node.interference_factor() == pytest.approx(1.25)
    node.allocate(cpu_task(cpus=16, memory_gb=1))
    assert node.interference_factor() == pytest.approx(1.5)


def test_interference_configurable_off():
    sim = Simulator()
    node = Node(sim, "n", "r", server_node(cpus=32),
                interference_alpha=0.0)
    node.allocate(cpu_task(cpus=32, memory_gb=1))
    assert node.interference_factor() == pytest.approx(1.0)
    with pytest.raises(ValueError):
        Node(sim, "x", "r", server_node(), interference_alpha=-1)


def test_compute_slows_on_packed_machines():
    """The §4.2 effect: identical work takes longer on a busy machine."""
    sim = Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=2,
                         gpu_nodes_per_rack=0)
    empty = topo.node("rack0-n0")
    packed = topo.node("rack0-n1")
    packed.allocate(cpu_task(cpus=28, memory_gb=8))  # heavy co-tenants
    durations = {}

    def run_on(node, tag):
        ex = Executor(sim, node, CONTAINER, cpu_task(cpus=1,
                                                     memory_gb=1))
        yield from ex.provision()
        duration = yield from ex.compute(5e10)
        durations[tag] = duration

    sim.spawn(run_on(empty, "empty"))
    sim.spawn(run_on(packed, "packed"))
    sim.run()
    assert durations["packed"] > durations["empty"] * 1.3
