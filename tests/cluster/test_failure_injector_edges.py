"""Edge cases for failure injection: permanent crashes, overlapping
partitions, mid-flight death, recovery wakeups, and drop labeling."""

import pytest

from repro.cluster import (
    DC_2021,
    FailureInjector,
    Network,
    NetworkUnreachableError,
    build_cluster,
)
from repro.sim import Simulator, Store, Tracer
from repro.sim.rng import RandomStream


def make_net(racks=2, nodes_per_rack=2, tracer=None):
    sim = Simulator()
    topo = build_cluster(sim, racks=racks, nodes_per_rack=nodes_per_rack,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021, tracer=tracer)
    return sim, topo, net


# ------------------------------------------------- crash without recovery
def test_permanent_crash_fail_fast_raises_promptly():
    sim, topo, net = make_net()
    inj = FailureInjector(sim, topo, net)
    inj.crash_node("rack1-n0", at=0.0)  # never recovers
    errors = []

    def client():
        yield sim.timeout(0.001)
        try:
            yield from net.transfer("rack0-n0", "rack1-n0", 100)
        except NetworkUnreachableError:
            errors.append(sim.now)

    sim.spawn(client())
    sim.run()
    assert len(errors) == 1
    assert errors[0] <= 0.001 \
        + DC_2021.network_rtt * Network.FAIL_FAST_RTT_MULTIPLIER + 1e-9


def test_permanent_crash_location_transparent_hangs_forever():
    """A POSIX-style waiter on a dead node with no recovery event is
    never woken — the §2.2 pathology the fail-fast contract replaces."""
    sim, topo, net = make_net()
    inj = FailureInjector(sim, topo, net)
    inj.crash_node("rack1-n0", at=0.0)
    done = []

    def client():
        yield sim.timeout(0.001)
        yield from net.transfer("rack0-n0", "rack1-n0", 100,
                                fail_fast=False)
        done.append(sim.now)

    proc = sim.spawn(client())
    sim.run(until=120.0)
    assert not done
    assert proc.is_alive


# --------------------------------------------------- overlapping partitions
def test_overlapping_partitions_block_until_both_heal():
    """Two partitions isolating the same node must *both* heal before
    traffic flows again — healing one is not enough."""
    sim, topo, net = make_net()
    inj = FailureInjector(sim, topo, net)
    others = {n.node_id for n in topo.nodes if n.node_id != "rack0-n0"}
    inj.partition({"rack0-n0"}, others, at=0.0, heal_at=2.0)
    inj.partition({"rack0-n0"}, others, at=1.0, heal_at=3.0)
    probes = {}

    def probe(at):
        yield sim.timeout(at - sim.now)
        probes[at] = net.is_reachable("rack0-n0", "rack1-n0")

    for at in (0.5, 1.5, 2.5, 3.5):
        sim.spawn(probe(at))
    sim.run()
    assert probes == {0.5: False, 1.5: False, 2.5: False, 3.5: True}


def test_location_transparent_wait_survives_partial_heal():
    sim, topo, net = make_net()
    inj = FailureInjector(sim, topo, net)
    others = {n.node_id for n in topo.nodes if n.node_id != "rack0-n0"}
    inj.partition({"rack0-n0"}, others, at=0.0, heal_at=2.0)
    inj.partition({"rack0-n0"}, others, at=1.0, heal_at=3.0)
    done = []

    def client():
        yield sim.timeout(0.5)
        yield from net.transfer("rack0-n0", "rack1-n0", 100,
                                fail_fast=False)
        done.append(sim.now)

    sim.spawn(client())
    sim.run()
    assert len(done) == 1
    assert done[0] > 3.0  # not released by the first heal at t=2


# --------------------------------------------------------- crash mid-flight
def test_crash_mid_flight_drops_message_with_cause():
    """A fire-and-forget message whose destination dies while it is in
    flight is dropped and labeled dst-dead (never a silent loss)."""
    tracer = Tracer()
    sim, topo, net = make_net(tracer=tracer)
    inbox = Store(sim)
    # 100 MB takes ~0.1 s of wire time; the crash lands mid-transfer.
    net.send("rack0-n0", "rack1-n0", inbox, "payload", nbytes=100_000_000)
    FailureInjector(sim, topo, net).crash_node("rack1-n0", at=0.001)
    sim.run()
    assert len(inbox) == 0
    counters = net.metrics.counters()
    assert counters.get("network.dropped", 0.0) == 1
    labeled = [name for name in counters
               if name.startswith("network.dropped{")
               and "cause=dst-dead" in name
               and "src=rack0-n0" in name and "dst=rack1-n0" in name]
    assert labeled
    drops = [r for r in tracer if r.category == "net.drop"]
    assert drops and drops[0].payload["cause"] == "dst-dead"


def test_send_to_already_dead_node_labeled_unreachable():
    sim, topo, net = make_net()
    topo.node("rack1-n0").crash()
    inbox = Store(sim)
    net.send("rack0-n0", "rack1-n0", inbox, "hello", nbytes=10)
    sim.run()
    assert len(inbox) == 0
    counters = net.metrics.counters()
    labeled = [name for name in counters
               if name.startswith("network.dropped{")
               and "cause=unreachable" in name]
    assert labeled


def test_lossy_link_drops_labeled_and_seeded():
    sim, topo, net = make_net()
    net.set_loss(0.5, rng=RandomStream(13, "loss"))
    inbox = Store(sim)
    for _ in range(40):
        net.send("rack0-n0", "rack1-n0", inbox, "m", nbytes=10)
    sim.run()
    counters = net.metrics.counters()
    dropped = counters.get("network.dropped", 0.0)
    assert dropped > 0
    assert len(inbox) == 40 - dropped
    labeled = [name for name in counters
               if name.startswith("network.dropped{")
               and "cause=loss" in name]
    assert labeled


# --------------------------------------------------- recovery wakeup order
def test_recovery_event_wakes_transparent_waiters_in_order():
    """Waiters parked on a crashed node all resume once the recovery
    event fires, and none resume a tick early."""
    sim, topo, net = make_net()
    inj = FailureInjector(sim, topo, net)
    inj.crash_node("rack1-n0", at=0.0, recover_at=5.0)
    wakeups = []

    def waiter(tag, start):
        yield sim.timeout(start)
        yield from net.transfer("rack0-n0", "rack1-n0", 100,
                                fail_fast=False)
        wakeups.append((tag, sim.now))

    sim.spawn(waiter("early", 0.001))
    sim.spawn(waiter("late", 2.0))
    sim.run()
    assert [tag for tag, _ in wakeups] == ["early", "late"]
    assert all(at >= 5.0 for _, at in wakeups)


def test_crash_validation():
    sim, topo, net = make_net()
    inj = FailureInjector(sim, topo, net)
    with pytest.raises(ValueError):
        inj.crash_node("rack0-n0", at=1.0, recover_at=1.0)
    with pytest.raises(ValueError):
        inj.gray_node("rack0-n0", at=0.0, slowdown=0.5)
    with pytest.raises(ValueError):
        inj.gray_node("rack0-n0", at=1.0, slowdown=2.0, restore_at=0.5)
