"""Unit tests for the health plane's mechanisms.

The circuit breaker gets a hypothesis *state-machine* test: random
interleavings of allow/success/failure calls with advancing clocks
must never violate the breaker contract — an open breaker admits
nothing before its cool-off, half-open admits exactly the probe
quota, and a replay of the same call sequence produces the identical
transition log (seeded determinism).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cluster.health import (
    CLOSED,
    DEAD,
    HALF_OPEN,
    HEALTHY,
    OPEN,
    SUSPECT,
    BreakerBoard,
    CircuitBreaker,
    CompletionLog,
    DispatchLedger,
    HealthConfig,
    OutlierEjector,
    PhiAccrualDetector,
    _MISSING,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream


def make_breaker(seed=0, **overrides) -> CircuitBreaker:
    config = HealthConfig(seed=seed, **overrides)
    return CircuitBreaker("fn", "cpu",  config,
                          RandomStream(seed, "breaker-test"))


# -- config validation ----------------------------------------------------

@pytest.mark.parametrize("bad", [
    dict(heartbeat_interval=0.0),
    dict(phi_suspect=0.0),
    dict(phi_suspect=3.0, phi_confirm=2.0),
    dict(breaker_consecutive=0),
    dict(breaker_probe_quota=0),
    dict(breaker_error_rate=0.0),
    dict(breaker_error_rate=1.5),
    dict(breaker_min_requests=99, breaker_window=16),
    dict(breaker_open_duration=0.0),
    dict(breaker_jitter=1.0),
    dict(eject_deviation=1.0),
    dict(eject_consecutive_failures=0),
    dict(max_eject_fraction=1.0),
    dict(probation=0.0),
    dict(latency_alpha=0.0),
    dict(max_recoveries=-1),
])
def test_config_rejects_bad_values(bad):
    with pytest.raises(ValueError):
        HealthConfig(**bad)


# -- phi-accrual detector -------------------------------------------------

def test_detector_suspects_then_confirms_on_silence():
    config = HealthConfig(heartbeat_interval=0.2,
                          phi_suspect=1.0, phi_confirm=2.0)
    det = PhiAccrualDetector(config)
    for i in range(5):
        det.beat("n0", 0.2 * (i + 1))
    assert det.state("n0") == HEALTHY
    assert det.phi("n0", 1.0) == 0.0
    # Silence: phi grows linearly with elapsed/mean.
    assert det.evaluate("n0", 1.2) is None           # phi ~0.43
    assert det.evaluate("n0", 1.5) == "suspect"      # phi ~1.09
    assert det.state("n0") == SUSPECT
    assert det.evaluate("n0", 2.0) == "confirm"      # phi ~2.17
    assert det.state("n0") == DEAD
    assert det.confirmations == [("n0", 2.0, "phi-accrual")]


def test_detector_hard_confirm_and_single_fire():
    fired = []
    det = PhiAccrualDetector(HealthConfig(),
                             on_confirm=lambda n, c: fired.append((n, c)))
    det.beat("n0", 0.2)
    assert det.confirm("n0", 0.5, "executor-lost")
    assert fired == [("n0", "executor-lost")]
    # Idempotent: a dead node cannot be re-confirmed.
    assert not det.confirm("n0", 0.6, "executor-lost")
    assert det.evaluate("n0", 99.0) is None
    assert fired == [("n0", "executor-lost")]


def test_detector_reinstates_on_resumed_beats():
    det = PhiAccrualDetector(HealthConfig())
    det.beat("n0", 0.2)
    det.confirm("n0", 0.5, "executor-lost")
    assert det.state("n0") == DEAD
    assert det.beat("n0", 3.0) is True   # rejoin
    assert det.state("n0") == HEALTHY
    assert det.reinstatements == [("n0", 3.0)]
    # Eligible for a fresh confirmation after reinstatement.
    assert det.confirm("n0", 4.0, "executor-lost")


def test_detector_rebase_resets_phi_without_polluting_mean():
    det = PhiAccrualDetector(HealthConfig(interval_alpha=1.0))
    det.beat("n0", 0.2)
    det.beat("n0", 0.4)
    mean = det._entry("n0").mean_interval
    det.rebase("n0", 10.0)
    assert det.phi("n0", 10.0) == 0.0
    assert det._entry("n0").mean_interval == mean


# -- circuit breaker: directed cases --------------------------------------

def test_breaker_opens_on_consecutive_failures():
    b = make_breaker(breaker_consecutive=3)
    for t in (0.1, 0.2):
        b.record_failure(t)
        assert b.state == CLOSED
    b.record_failure(0.3)
    assert b.state == OPEN
    assert not b.allow(0.4)


def test_breaker_opens_on_windowed_error_rate():
    b = make_breaker(breaker_consecutive=100, breaker_window=8,
                     breaker_min_requests=8, breaker_error_rate=0.5)
    # Alternate success/failure: never consecutive, but the window
    # reaches 8 outcomes at 50% failure.
    for i in range(8):
        if i % 2:
            b.record_failure(0.1 * i)
        else:
            b.record_success(0.1 * i)
    assert b.state == OPEN


def test_breaker_half_open_admits_exactly_the_probe_quota():
    b = make_breaker(breaker_consecutive=1, breaker_probe_quota=3,
                     breaker_open_duration=1.0, breaker_jitter=0.0)
    b.record_failure(0.0)
    assert b.state == OPEN
    assert not b.allow(0.5)
    admitted = [b.allow(1.5) for _ in range(5)]
    assert b.state == HALF_OPEN
    assert admitted == [True, True, True, False, False]


def test_breaker_closes_only_after_full_probe_success():
    b = make_breaker(breaker_consecutive=1, breaker_probe_quota=2,
                     breaker_open_duration=1.0, breaker_jitter=0.0)
    b.record_failure(0.0)
    assert b.allow(1.1)
    b.record_success(1.2)
    assert b.state == HALF_OPEN    # one probe is not enough
    assert b.allow(1.3)
    b.record_success(1.4)
    assert b.state == CLOSED


def test_breaker_failed_probe_reopens():
    b = make_breaker(breaker_consecutive=1, breaker_probe_quota=2,
                     breaker_open_duration=1.0, breaker_jitter=0.0)
    b.record_failure(0.0)
    assert b.allow(1.1)
    b.record_failure(1.2)
    assert b.state == OPEN
    assert not b.allow(1.5)        # a fresh cool-off started at 1.2


def test_board_all_open_requires_existing_breakers():
    config = HealthConfig(breaker_consecutive=1, breaker_jitter=0.0)
    board = BreakerBoard(config, RandomStream(0, "t"))
    assert not board.all_open("fn", 0.0)   # no traffic -> admit
    board.record("fn", "cpu", False, 0.0)
    assert board.all_open("fn", 0.5)
    board.record("fn", "gpu", True, 0.6)   # a healthy class appears
    assert not board.all_open("fn", 0.7)


# -- circuit breaker: hypothesis state machine ----------------------------

class BreakerMachine(RuleBasedStateMachine):
    """Random walks over the breaker API with a shadow model.

    Checks on every step: (1) an OPEN breaker admits nothing before
    its cool-off can elapse, (2) HALF_OPEN admits exactly the probe
    quota, (3) replaying the recorded call sequence against a fresh
    same-seeded breaker reproduces the transition log bit for bit.
    """

    @initialize(seed=st.integers(0, 2 ** 16))
    def setup(self, seed):
        self.seed = seed
        self.b = self._fresh()
        self.now = 0.0
        self.calls = []
        self.probes_admitted = 0

    def _fresh(self):
        return make_breaker(seed=self.seed, breaker_consecutive=3,
                            breaker_window=8, breaker_min_requests=4,
                            breaker_error_rate=0.5,
                            breaker_open_duration=1.0,
                            breaker_probe_quota=2, breaker_jitter=0.1)

    @rule(dt=st.floats(0.0, 0.6))
    def advance(self, dt):
        self.now += dt
        self.calls.append(("advance", dt))

    @rule()
    def dispatch(self):
        before = self.b.state
        admitted = self.b.allow(self.now)
        self.calls.append(("allow", None))
        if before == OPEN and self.now < self.b._reopen_at:
            assert not admitted, "open breaker admitted before cool-off"
        if before == HALF_OPEN:
            self.probes_admitted += int(admitted)
        elif self.b.state == HALF_OPEN:
            self.probes_admitted = int(admitted)  # transitioned just now
        if self.b.state == HALF_OPEN:
            assert self.probes_admitted \
                <= self.b.config.breaker_probe_quota

    @rule(ok=st.booleans())
    def outcome(self, ok):
        if self.b.state == HALF_OPEN and not ok:
            self.probes_admitted = 0   # reopen resets probation
        if ok:
            self.b.record_success(self.now)
        else:
            self.b.record_failure(self.now)
        if self.b.state == CLOSED:
            self.probes_admitted = 0
        self.calls.append(("success" if ok else "failure", None))

    @invariant()
    def replay_is_deterministic(self):
        fresh = self._fresh()
        t = 0.0
        for call, arg in self.calls:
            if call == "advance":
                t += arg
            elif call == "allow":
                fresh.allow(t)
            elif call == "success":
                fresh.record_success(t)
            else:
                fresh.record_failure(t)
        assert fresh.transitions == self.b.transitions
        assert fresh.state == self.b.state


BreakerMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
TestBreakerStateMachine = BreakerMachine.TestCase


# -- outlier ejector ------------------------------------------------------

def _feed(ej, node, latency, n):
    for _ in range(n):
        ej.observe(node, "cpu", latency)


def test_ejector_quarantines_outlier_and_reinstates():
    config = HealthConfig(eject_min_samples=3, eject_deviation=2.0,
                          max_eject_fraction=0.34, probation=5.0,
                          latency_alpha=1.0)
    ej = OutlierEjector(config)
    for node in ("n0", "n1", "n2"):
        _feed(ej, node, 0.1, 3)
    _feed(ej, "n3", 0.5, 3)       # 5x the peer median
    ej.evaluate(10.0)
    assert ej.is_quarantined("n3")
    assert not any(ej.is_quarantined(n) for n in ("n0", "n1", "n2"))
    # Probation served: reinstated with fresh statistics.
    ej.evaluate(15.0)
    assert not ej.is_quarantined("n3")
    assert ej.reinstatements == [("n3", 15.0)]
    assert not any(node == "n3" for node, _fn in ej._count)


def test_ejector_respects_fraction_cap():
    # 6 members at fraction 0.25 -> cap = int(1.5) = 1: with two
    # equally bad outliers, only one may be quarantined at a time.
    config = HealthConfig(eject_min_samples=2, eject_deviation=2.0,
                          max_eject_fraction=0.25, latency_alpha=1.0)
    ej = OutlierEjector(config)
    for node in ("n0", "n1", "n2", "n3"):
        _feed(ej, node, 0.1, 2)
    for node in ("n4", "n5"):
        _feed(ej, node, 1.0, 2)
    ej.evaluate(1.0)
    assert sum(ej.is_quarantined(n) for n in ("n4", "n5")) == 1
    ej.evaluate(1.1)   # cap still holds while the first serves probation
    assert sum(ej.is_quarantined(n) for n in ("n4", "n5")) == 1
    assert not any(ej.is_quarantined(n)
                   for n in ("n0", "n1", "n2", "n3"))


def test_ejector_reinstate_lifts_quarantine_early():
    # A confirmed-crash rejoin clears the quarantine before probation
    # would have: the old incarnation's gray evidence is void.
    config = HealthConfig(eject_min_samples=3, eject_deviation=2.0,
                          max_eject_fraction=0.34, probation=5.0,
                          latency_alpha=1.0)
    ej = OutlierEjector(config)
    for node in ("n0", "n1", "n2"):
        _feed(ej, node, 0.1, 3)
    _feed(ej, "n3", 0.5, 3)
    ej.evaluate(10.0)
    assert ej.is_quarantined("n3")
    ej.reinstate("n3", 11.0)                 # rebooted, way before 15.0
    assert not ej.is_quarantined("n3")
    assert ej.reinstatements == [("n3", 11.0)]
    assert not any(node == "n3" for node, _fn in ej._count)
    ej.reinstate("n3", 12.0)                 # idempotent
    assert ej.reinstatements == [("n3", 11.0)]


def test_ejector_groups_latency_by_function():
    # A node hosting a long-running function is not an outlier: its
    # per-function EMAs match its peers', even though a cross-function
    # average would look several times slower than peers serving only
    # the short function.
    config = HealthConfig(eject_min_samples=2, eject_deviation=2.0,
                          max_eject_fraction=0.5, latency_alpha=1.0)
    ej = OutlierEjector(config)
    for node in ("n0", "n1", "n2", "n3"):
        for _ in range(3):
            ej.observe(node, "cpu", 0.2, fn="front")
    for node in ("n2", "n3"):
        for _ in range(3):
            ej.observe(node, "cpu", 2.2, fn="batch")
    ej.evaluate(1.0)
    assert ej.quarantined_count() == 0
    # A genuine outlier within one function's peer group still ejects.
    for _ in range(3):
        ej.observe("n1", "cpu", 1.0, fn="front")
    ej.evaluate(2.0)
    assert ej.is_quarantined("n1")
    assert ej.quarantined_count() == 1


def test_ejector_ejects_on_consecutive_failures():
    """The failure mode needs no latency samples at all: a run of
    failures on one node quarantines it even though it never produced
    a single success to measure."""
    config = HealthConfig(eject_consecutive_failures=4)
    ej = OutlierEjector(config)
    for node in ("n0", "n1", "n2", "n3", "n4"):
        ej.record_result(node, "cpu", True)
    for _ in range(4):
        ej.record_result("n4", "cpu", False)
    ej.evaluate(1.0)
    assert ej.is_quarantined("n4")
    (node, at, reason, _, _), = ej.ejections
    assert node == "n4" and reason == "failures"


def test_ejector_success_resets_the_failure_run():
    config = HealthConfig(eject_consecutive_failures=3)
    ej = OutlierEjector(config)
    for node in ("n0", "n1", "n2", "n3"):
        ej.record_result(node, "cpu", True)
    for _ in range(2):
        ej.record_result("n3", "cpu", False)
    ej.record_result("n3", "cpu", True)    # run broken
    ej.record_result("n3", "cpu", False)
    ej.evaluate(1.0)
    assert not ej.is_quarantined("n3")


def test_ejector_failure_mode_respects_cap():
    config = HealthConfig(eject_consecutive_failures=2,
                          max_eject_fraction=0.25)
    ej = OutlierEjector(config)
    for node in ("n0", "n1", "n2", "n3"):   # cap = int(0.25 * 4) = 1
        ej.record_result(node, "cpu", True)
    for node in ("n2", "n3"):
        ej.record_result(node, "cpu", False)
        ej.record_result(node, "cpu", False)
    ej.evaluate(1.0)
    assert sum(ej.is_quarantined(n) for n in ("n2", "n3")) == 1


def test_ejector_needs_min_samples_and_peers():
    config = HealthConfig(eject_min_samples=5, eject_deviation=2.0,
                          latency_alpha=1.0)
    ej = OutlierEjector(config)
    _feed(ej, "n0", 1.0, 4)       # below min_samples
    _feed(ej, "n1", 0.1, 5)       # only one ripe node: no peer median
    ej.evaluate(1.0)
    assert not ej.is_quarantined("n0")
    assert not ej.is_quarantined("n1")


# -- dispatch ledger + completion log -------------------------------------

def test_ledger_orphans_only_the_dead_nodes_entries():
    sim = Simulator()
    ledger = DispatchLedger(sim)
    a = ledger.register("k1", "n0")
    b = ledger.register("k2", "n0")
    c = ledger.register("k3", "n1")
    ledger.settle(a)              # finished before the crash
    assert ledger.total_in_flight() == 2
    assert ledger.orphan_node("n0", "executor-lost") == 1
    assert not a.orphan.triggered
    assert b.orphan.triggered and b.cause == "executor-lost"
    assert not c.orphan.triggered
    assert ledger.in_flight("n1") == 1
    assert ledger.orphaned_total == 1


def test_ledger_settle_is_idempotent():
    sim = Simulator()
    ledger = DispatchLedger(sim)
    a = ledger.register("k1", "n0")
    ledger.settle(a)
    ledger.settle(a)
    assert ledger.total_in_flight() == 0
    assert ledger.orphan_node("n0", "x") == 0


def test_completion_log_dedups_first_result():
    log = CompletionLog()
    assert log.lookup("k") is _MISSING
    log.record("k", 41)
    log.record("k", 42)           # second write loses: first completion wins
    assert log.lookup("k") == 41
    assert log.hits == 1
    assert "k" in log
