"""Tests for the cause= attribute on spans that ended in an exception."""

import pytest

from repro.sim import Tracer
from repro.sim.trace import STATUS_ERROR


class FakeClock:
    """Manually-advanced clock for driving an unbound tracer."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def tracer():
    return Tracer(enabled=True, clock=FakeClock())


def test_escaping_exception_sets_cause(tracer):
    with pytest.raises(TimeoutError):
        with tracer.span("doomed"):
            raise TimeoutError("too slow")
    span, = tracer.spans(name="doomed")
    assert span.status == STATUS_ERROR
    assert span.attributes["cause"] == "TimeoutError"


def test_cause_propagates_through_enclosing_spans(tracer):
    """Every span an exception escapes through names its cause — the
    trace shows the failure's whole path, not just the leaf."""
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("bad")
    inner, = tracer.spans(name="inner")
    outer, = tracer.spans(name="outer")
    assert inner.attributes["cause"] == "ValueError"
    assert outer.attributes["cause"] == "ValueError"


def test_explicit_cause_attribute_wins(tracer):
    """A span that already set cause= keeps its (more specific) value."""
    with pytest.raises(RuntimeError):
        with tracer.span("careful") as span:
            span.set(cause="upstream-partition")
            raise RuntimeError("secondary symptom")
    span, = tracer.spans(name="careful")
    assert span.attributes["cause"] == "upstream-partition"


def test_clean_spans_carry_no_cause(tracer):
    with tracer.span("fine"):
        pass
    span, = tracer.spans(name="fine")
    assert "cause" not in span.attributes
