"""Unit tests for seeded RNG streams and the tracer."""

import pytest

from repro.sim import RandomStream, Tracer


def test_same_seed_same_stream():
    a = RandomStream(42)
    b = RandomStream(42)
    assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]


def test_different_labels_decorrelate():
    a = RandomStream(42).fork("network")
    b = RandomStream(42).fork("storage")
    assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]


def test_fork_is_stable_across_sibling_creation():
    root1 = RandomStream(7)
    net1 = root1.fork("net")
    draws1 = [net1.uniform() for _ in range(5)]

    root2 = RandomStream(7)
    root2.fork("extra-component")  # adding a sibling must not disturb "net"
    net2 = root2.fork("net")
    draws2 = [net2.uniform() for _ in range(5)]
    assert draws1 == draws2


def test_exponential_mean_close():
    rng = RandomStream(1)
    draws = [rng.exponential(2.0) for _ in range(20000)]
    assert abs(sum(draws) / len(draws) - 2.0) < 0.1


def test_exponential_validation():
    rng = RandomStream(1)
    with pytest.raises(ValueError):
        rng.exponential(0.0)


def test_zipf_rank_zero_most_popular():
    rng = RandomStream(3)
    counts = [0] * 10
    for _ in range(20000):
        counts[rng.zipf_rank(10, alpha=1.2)] += 1
    assert counts[0] > counts[1] > counts[3]
    assert counts[0] > 0.3 * sum(counts)


def test_zipf_validation():
    rng = RandomStream(0)
    with pytest.raises(ValueError):
        rng.zipf_rank(0, 1.0)
    with pytest.raises(ValueError):
        rng.zipf_rank(10, 0.0)


def test_bernoulli_bounds():
    rng = RandomStream(0)
    with pytest.raises(ValueError):
        rng.bernoulli(1.5)
    assert rng.bernoulli(1.0) is True
    assert rng.bernoulli(0.0) is False


def test_lognormal_positive():
    rng = RandomStream(5)
    assert all(rng.lognormal(1.0, 0.5) > 0 for _ in range(100))


def test_tracer_records_and_selects():
    tr = Tracer()
    tr.record(1.0, "net.send", nbytes=100)
    tr.record(2.0, "net.send", nbytes=50)
    tr.record(3.0, "storage.read", nbytes=10)
    assert len(tr) == 3
    assert tr.sum_field("net.send", "nbytes") == 150
    sends = tr.select("net.send", lambda r: r.payload["nbytes"] > 60)
    assert len(sends) == 1 and sends[0].time == 1.0


def test_tracer_disabled_is_noop():
    tr = Tracer(enabled=False)
    tr.record(1.0, "x", a=1)
    assert len(tr) == 0


def test_tracer_category_filter():
    tr = Tracer(categories=["keep"])
    tr.record(1.0, "keep", v=1)
    tr.record(2.0, "drop", v=2)
    assert len(tr) == 1


def test_tracer_clear():
    tr = Tracer()
    tr.record(1.0, "x")
    tr.clear()
    assert len(tr) == 0
