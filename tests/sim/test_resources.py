"""Unit tests for Resource, Container, and Store."""

import pytest

from repro.sim import Container, Resource, Simulator, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    a = res.acquire()
    b = res.acquire()
    assert a.triggered and b.triggered
    assert res.in_use == 2


def test_resource_queues_beyond_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()
    second = res.acquire()
    assert not second.triggered
    assert res.queue_length == 1
    res.release()
    assert second.triggered
    assert res.in_use == 1


def test_resource_fifo_fairness():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, tag, hold):
        yield res.acquire()
        order.append(tag)
        yield sim.timeout(hold)
        res.release()

    for i in range(5):
        sim.spawn(worker(sim, i, hold=1.0))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_release_when_idle_is_error():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_models_queueing_delay():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    finish_times = []

    def job(sim):
        yield res.acquire()
        yield sim.timeout(2.0)
        res.release()
        finish_times.append(sim.now)

    for _ in range(3):
        sim.spawn(job(sim))
    sim.run()
    assert finish_times == [2.0, 4.0, 6.0]


# --------------------------------------------------------------- Container
def test_container_put_take():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, initial=10.0)
    got = []

    def taker(sim):
        amount = yield tank.take(5.0)
        got.append(amount)

    sim.spawn(taker(sim))
    sim.run()
    assert got == [5.0]
    assert tank.level == 5.0


def test_container_blocks_until_refilled():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, initial=0.0)
    times = []

    def taker(sim):
        yield tank.take(4.0)
        times.append(sim.now)

    def filler(sim):
        yield sim.timeout(3.0)
        tank.put(4.0)

    sim.spawn(taker(sim))
    sim.spawn(filler(sim))
    sim.run()
    assert times == [3.0]


def test_container_overflow_rejected():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, initial=8.0)
    with pytest.raises(ValueError):
        tank.put(5.0)


def test_container_take_larger_than_capacity_rejected():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    with pytest.raises(ValueError):
        tank.take(11.0)


def test_container_fifo_ordering_of_takers():
    sim = Simulator()
    tank = Container(sim, capacity=100.0, initial=0.0)
    served = []

    def taker(sim, tag, amount):
        yield tank.take(amount)
        served.append(tag)

    sim.spawn(taker(sim, "first-big", 10.0))
    sim.spawn(taker(sim, "second-small", 1.0))

    def filler(sim):
        yield sim.timeout(1.0)
        tank.put(1.0)  # not enough for the head-of-line taker
        yield sim.timeout(1.0)
        assert served == []  # FIFO: small taker cannot jump the queue
        tank.put(9.0)  # serves the big taker
        yield sim.timeout(1.0)
        tank.put(1.0)  # serves the small taker

    sim.spawn(filler(sim))
    sim.run()
    # Head-of-line blocking is intentional: FIFO, not best-fit.
    assert served == ["first-big", "second-small"]


# ------------------------------------------------------------------- Store
def test_store_put_then_get():
    sim = Simulator()
    inbox = Store(sim)
    inbox.put("msg")
    got = []

    def getter(sim):
        got.append((yield inbox.get()))

    sim.spawn(getter(sim))
    sim.run()
    assert got == ["msg"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    inbox = Store(sim)
    log = []

    def consumer(sim):
        item = yield inbox.get()
        log.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(2.0)
        inbox.put("late")

    sim.spawn(consumer(sim))
    sim.spawn(producer(sim))
    sim.run()
    assert log == [(2.0, "late")]


def test_store_preserves_fifo_order():
    sim = Simulator()
    inbox = Store(sim)
    for i in range(5):
        inbox.put(i)
    out = []

    def drain(sim):
        for _ in range(5):
            out.append((yield inbox.get()))

    sim.spawn(drain(sim))
    sim.run()
    assert out == [0, 1, 2, 3, 4]


def test_store_try_get_nonblocking():
    sim = Simulator()
    inbox = Store(sim)
    assert inbox.try_get() is None
    inbox.put("x")
    assert inbox.try_get() == "x"
    assert len(inbox) == 0


def test_store_multiple_blocked_getters_served_fifo():
    sim = Simulator()
    inbox = Store(sim)
    served = []

    def getter(sim, tag):
        item = yield inbox.get()
        served.append((tag, item))

    sim.spawn(getter(sim, "g0"))
    sim.spawn(getter(sim, "g1"))

    def producer(sim):
        yield sim.timeout(1.0)
        inbox.put("a")
        inbox.put("b")

    sim.spawn(producer(sim))
    sim.run()
    assert served == [("g0", "a"), ("g1", "b")]
