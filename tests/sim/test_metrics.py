"""Unit tests for metrics primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (Counter, EmptyHistogramError, Histogram,
                       MetricsRegistry, TimeWeightedGauge)


def test_counter_accumulates():
    c = Counter("ops")
    c.add()
    c.add(4)
    assert c.value == 5


def test_counter_rejects_negative():
    c = Counter("ops")
    with pytest.raises(ValueError):
        c.add(-1)


def test_histogram_basic_stats():
    h = Histogram("latency")
    h.extend([1.0, 2.0, 3.0, 4.0])
    assert h.count == 4
    assert h.mean == 2.5
    assert h.min == 1.0
    assert h.max == 4.0
    assert h.total == 10.0


def test_histogram_percentile_interpolates():
    h = Histogram()
    h.extend([0.0, 10.0])
    assert h.percentile(50) == 5.0
    assert h.percentile(0) == 0.0
    assert h.percentile(100) == 10.0


def test_histogram_percentile_unsorted_input():
    h = Histogram()
    h.extend([5.0, 1.0, 3.0, 2.0, 4.0])
    assert h.p50 == 3.0


def test_histogram_empty_percentile_raises():
    h = Histogram("empty")
    assert math.isnan(h.mean)  # mean stays NaN: safe in arithmetic
    with pytest.raises(EmptyHistogramError):
        h.p50
    with pytest.raises(EmptyHistogramError):
        h.percentile(99)
    # EmptyHistogramError is a ValueError, so legacy handlers catch it.
    assert issubclass(EmptyHistogramError, ValueError)
    # summary() must stay exporter-safe on empty histograms.
    assert h.summary()["count"] == 0.0
    assert math.isnan(h.summary()["p99"])


def test_histogram_percentile_range_check():
    h = Histogram()
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.percentile(101)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_histogram_percentiles_bounded_by_min_max(samples):
    h = Histogram()
    h.extend(samples)
    for p in (0, 25, 50, 75, 99, 100):
        value = h.percentile(p)
        assert min(samples) - 1e-9 <= value <= max(samples) + 1e-9


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=100))
def test_histogram_percentile_monotone_in_p(samples):
    h = Histogram()
    h.extend(samples)
    values = [h.percentile(p) for p in range(0, 101, 10)]
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


def test_time_weighted_gauge_mean():
    g = TimeWeightedGauge("util")
    g.set(1.0, now=0.0)
    g.set(0.0, now=5.0)   # level 1.0 for 5s
    assert g.mean(now=10.0) == pytest.approx(0.5)  # then 0.0 for 5s


def test_time_weighted_gauge_add_and_peak():
    g = TimeWeightedGauge()
    g.add(2.0, now=0.0)
    g.add(3.0, now=1.0)
    g.add(-4.0, now=2.0)
    assert g.level == 1.0
    assert g.peak == 5.0
    # 2.0 for [0,1), 5.0 for [1,2), 1.0 for [2,4) -> (2+5+2)/4
    assert g.mean(now=4.0) == pytest.approx(9.0 / 4.0)


def test_time_weighted_gauge_rejects_time_reversal():
    g = TimeWeightedGauge()
    g.set(1.0, now=5.0)
    with pytest.raises(ValueError):
        g.set(0.0, now=4.0)


def test_registry_reuses_instruments():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h") is reg.histogram("h")
    reg.counter("a").add(3)
    reg.histogram("h").observe(1.0)
    assert reg.counters() == {"a": 3.0}
    assert reg.histograms()["h"]["count"] == 1.0
