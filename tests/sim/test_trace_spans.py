"""Unit tests for the hierarchical span API of the tracer."""

import pytest

from repro.sim import NULL_SPAN, NULL_TRACER, Tracer
from repro.sim.trace import STATUS_ERROR, STATUS_OK


class FakeClock:
    """Manually-advanced clock for driving an unbound tracer."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(enabled=True, clock=clock)


def test_nested_spans_parent_and_ids(tracer, clock):
    with tracer.span("outer", a=1) as outer:
        clock.tick()
        with tracer.span("inner") as inner:
            clock.tick()
        clock.tick()
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.span_id != inner.span_id
    # Child interval nested within the parent's.
    assert outer.start <= inner.start <= inner.end <= outer.end
    assert outer.duration == pytest.approx(3.0)
    assert inner.duration == pytest.approx(1.0)
    ids = [s.span_id for s in tracer.spans()]
    assert len(ids) == len(set(ids))


def test_siblings_share_parent_and_restore_current(tracer, clock):
    with tracer.span("root") as root:
        with tracer.span("first"):
            assert tracer.current_span.name == "first"
        assert tracer.current_span is root
        with tracer.span("second"):
            pass
    assert tracer.current_span is None
    first, second = tracer.spans(name="first") + tracer.spans(name="second")
    assert first.parent_id == second.parent_id == root.span_id
    assert tracer.children(root) == [first, second]
    assert tracer.root_of(first) is root
    assert tracer.depth_of(root) == 1


def test_exception_marks_error_status(tracer, clock):
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            clock.tick()
            with tracer.span("doomed"):
                raise RuntimeError("boom")
    doomed, = tracer.spans(name="doomed")
    outer, = tracer.spans(name="outer")
    assert doomed.status == STATUS_ERROR
    assert "boom" in doomed.error
    assert doomed.finished
    # The exception propagated through the outer span too.
    assert outer.status == STATUS_ERROR
    assert tracer.current_span is None  # context restored


def test_explicit_parent_overrides_context(tracer):
    with tracer.span("ambient"):
        with tracer.span("adopted", parent=None) as kid:
            pass
    # parent=None means "use the ambient span"; pass an explicit span
    # to re-parent.
    assert kid.parent_id == tracer.spans(name="ambient")[0].span_id
    other = tracer.start_span("elsewhere")
    with tracer.span("stitched", parent=other) as s:
        pass
    assert s.parent_id == other.span_id


def test_category_filter_returns_null_span(clock):
    tracer = Tracer(enabled=True, categories=["keep"], clock=clock)
    assert tracer.span("dropped", category="drop") is NULL_SPAN
    with tracer.span("kept", category="keep"):
        pass
    assert [s.name for s in tracer.spans()] == ["kept"]
    tracer.record(0.0, "drop", x=1)
    tracer.record(0.0, "keep", x=1)
    assert len(tracer) == 2  # span-end compat record + explicit record
    assert len(tracer.select("keep")) == 2
    assert tracer.select("drop") == []


def test_disabled_tracer_is_free():
    tracer = Tracer(enabled=False)
    cm = tracer.span("anything", big=list(range(10)))
    assert cm is NULL_SPAN  # the shared singleton, no allocation
    with cm as sp:
        assert sp is NULL_SPAN
        sp.set(ignored=True)
    tracer.record(1.0, "cat", x=1)
    assert tracer.span_count == 0
    assert len(tracer) == 0
    assert tracer.current_span is None
    assert not NULL_SPAN  # falsy, so `if span:` guards work


def test_null_tracer_shared_and_disabled():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.span("x") is NULL_SPAN
    assert NULL_TRACER.span_count == 0


def test_span_end_emits_compat_record(tracer, clock):
    with tracer.span("net.transfer", nbytes=100):
        clock.tick()
    with tracer.span("net.transfer", nbytes=50):
        pass
    assert tracer.sum_field("net.transfer", "nbytes") == 150
    recs = tracer.select("net.transfer")
    assert len(recs) == 2
    assert recs[0].time == pytest.approx(1.0)


def test_select_predicate_and_index(tracer):
    for i in range(5):
        tracer.record(float(i), "a", i=i)
        tracer.record(float(i), "b", i=i)
    assert len(tracer.select("a")) == 5
    assert [r.payload["i"] for r in
            tracer.select("a", lambda r: r.payload["i"] % 2 == 0)] \
        == [0, 2, 4]
    # Returned lists are copies: mutating one must not corrupt the index.
    tracer.select("a").clear()
    assert len(tracer.select("a")) == 5


def test_clear_resets_spans_and_records(tracer):
    with tracer.span("x"):
        pass
    tracer.record(0.0, "y")
    tracer.clear()
    assert tracer.span_count == 0
    assert len(tracer) == 0
    assert tracer.select("x") == []
    assert tracer.roots() == []


def test_unfinished_span_duration_raises(tracer):
    span = tracer.start_span("open")
    assert not span.finished
    with pytest.raises(ValueError):
        _ = span.duration
    with pytest.raises(ValueError):
        tracer.end_span(tracer.end_span(span))  # double end
