"""QuantileSketch: unit behavior plus Hypothesis property tests.

The properties pin exactly what the tail pipeline relies on: the
relative-error guarantee against the exact order statistics (including
adversarial bimodal/heavy-tail streams), lossless merging in any
grouping or order, quantile monotonicity, and JSON round-trip identity.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    SketchAccuracyError,
    max_quantile_rel_err,
    quantile_rel_err,
)


def make(values, alpha=DEFAULT_RELATIVE_ACCURACY, max_buckets=512):
    sk = QuantileSketch(relative_accuracy=alpha, max_buckets=max_buckets)
    for v in values:
        sk.insert(v)
    return sk


#: Positive latencies spanning microseconds to hours — wide enough to
#: stress bucket spread, narrow enough that 512 buckets never collapse.
latencies = st.floats(min_value=1e-6, max_value=3600.0,
                      allow_nan=False, allow_infinity=False)
streams = st.lists(latencies, min_size=1, max_size=300)


# -- unit behavior ---------------------------------------------------------

def test_empty_sketch_raises_on_quantile():
    sk = QuantileSketch()
    assert sk.count == 0
    with pytest.raises(ValueError):
        sk.quantile(0.5)
    with pytest.raises(ValueError):
        sk.mean


def test_rejects_negative_values_and_bad_quantiles():
    sk = QuantileSketch()
    with pytest.raises(ValueError):
        sk.insert(-1.0)
    sk.insert(1.0)
    with pytest.raises(ValueError):
        sk.quantile(1.5)
    with pytest.raises(ValueError):
        QuantileSketch(relative_accuracy=0.0)
    with pytest.raises(ValueError):
        QuantileSketch(max_buckets=1)


def test_single_value_is_exact():
    sk = make([0.25])
    assert sk.quantile(0.0) == pytest.approx(0.25, rel=0.01)
    assert sk.quantile(1.0) == pytest.approx(0.25, rel=0.01)
    assert sk.min == sk.max == 0.25
    assert sk.mean == 0.25


def test_zero_and_subresolution_values_share_the_zero_bucket():
    sk = make([0.0, 1e-15, 1e-13, 1.0])
    assert sk.count == 4
    assert sk.quantile(0.0) == 0.0
    assert sk.quantile(1.0) == pytest.approx(1.0, rel=0.02)


def test_memory_stays_bounded_under_collapse():
    sk = QuantileSketch(max_buckets=32)
    for i in range(10_000):
        sk.insert(1e-4 * (1.0 + i))
    assert len(sk._buckets) <= 32
    assert sk.count == 10_000


def test_collapse_preserves_upper_quantiles():
    # 5 decades of spread through a tiny 16-bucket sketch: the bottom
    # folds together, but p99 only needs the top buckets.
    values = [10 ** (i % 5) * (1 + (i % 7) / 10.0) for i in range(2000)]
    sk = make(values, max_buckets=16)
    assert quantile_rel_err(values, 0.99, sketch=sk) <= \
        DEFAULT_RELATIVE_ACCURACY + 1e-9


def test_merge_requires_matching_accuracy():
    a = QuantileSketch(relative_accuracy=0.01)
    b = QuantileSketch(relative_accuracy=0.02)
    with pytest.raises(SketchAccuracyError):
        a.merge(b)


def test_merged_classmethod_handles_empty_iterable():
    assert QuantileSketch.merged([]) is None
    merged = QuantileSketch.merged([make([1.0]), make([2.0])])
    assert merged.count == 2


def test_fraction_below():
    sk = make([0.01] * 90 + [1.0] * 10)
    assert sk.fraction_below(0.5) == pytest.approx(0.9)
    assert sk.fraction_below(0.0) == 0.0
    assert sk.fraction_below(10.0) == 1.0


def test_copy_is_independent():
    a = make([1.0, 2.0])
    b = a.copy()
    b.insert(100.0)
    assert a.count == 2
    assert b.count == 3


# -- relative-error bound --------------------------------------------------

@given(values=streams, q=st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.99, 1.0]))
@settings(max_examples=200, deadline=None)
def test_relative_error_bound(values, q):
    """The DDSketch guarantee vs the bracketing order statistics."""
    assert quantile_rel_err(values, q) <= DEFAULT_RELATIVE_ACCURACY + 1e-9


@given(low=st.floats(1e-4, 1e-2), high=st.floats(1.0, 100.0),
       n_low=st.integers(1, 200), n_high=st.integers(1, 200))
@settings(max_examples=100, deadline=None)
def test_relative_error_bound_on_adversarial_bimodal(low, high,
                                                     n_low, n_high):
    """Two point masses decades apart — the stream shape where an
    interpolated reference would diverge arbitrarily, and exactly the
    shape tail latencies take (base band + spikes)."""
    values = [low] * n_low + [high] * n_high
    assert max_quantile_rel_err(values) <= DEFAULT_RELATIVE_ACCURACY + 1e-9


@given(values=st.lists(st.floats(1e-6, 1e6), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_relative_error_bound_on_heavy_tail_spread(values):
    """Twelve decades of value spread still fits in 512 buckets... not
    quite — so the harness must hold even when collapse kicks in at
    the bottom while q99 reads the top."""
    assert quantile_rel_err(values, 0.99) <= DEFAULT_RELATIVE_ACCURACY + 1e-9


# -- merge properties ------------------------------------------------------

@given(a=streams, b=streams)
@settings(max_examples=100, deadline=None)
def test_merge_is_commutative(a, b):
    ab = make(a).merge(make(b))
    ba = make(b).merge(make(a))
    assert ab._buckets == ba._buckets
    assert ab._zero_count == ba._zero_count
    assert ab.count == ba.count
    assert ab.min == ba.min and ab.max == ba.max
    assert ab.sum == pytest.approx(ba.sum)


@given(a=streams, b=streams, c=streams)
@settings(max_examples=50, deadline=None)
def test_merge_is_associative(a, b, c):
    left = make(a).merge(make(b)).merge(make(c))
    right = make(a).merge(make(b).merge(make(c)))
    assert left._buckets == right._buckets
    assert left.count == right.count


@given(a=streams, b=streams)
@settings(max_examples=100, deadline=None)
def test_merge_equals_inserting_the_union(a, b):
    """Distributed collection is lossless: merging per-shard sketches
    gives the identical bucket table as one sketch over all samples."""
    merged = make(a).merge(make(b))
    direct = make(a + b)
    assert merged._buckets == direct._buckets
    assert merged._zero_count == direct._zero_count
    assert merged.count == direct.count


# -- quantile monotonicity -------------------------------------------------

@given(values=streams)
@settings(max_examples=100, deadline=None)
def test_quantiles_are_monotone(values):
    sk = make(values)
    qs = [sk.quantile(q) for q in
          (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)]
    assert qs == sorted(qs)
    assert qs[0] >= 0.0
    assert qs[-1] <= sk.max


# -- serialisation ---------------------------------------------------------

@given(values=streams)
@settings(max_examples=100, deadline=None)
def test_json_round_trip_identity(values):
    sk = make(values)
    back = QuantileSketch.loads(sk.dumps())
    assert back._buckets == sk._buckets
    assert back._zero_count == sk._zero_count
    assert back.count == sk.count
    assert back.sum == sk.sum
    assert back.min == sk.min and back.max == sk.max
    assert back.relative_accuracy == sk.relative_accuracy
    # And the round trip survives a second hop byte-identically.
    assert back.dumps() == sk.dumps()


def test_json_round_trip_of_empty_sketch():
    sk = QuantileSketch()
    back = QuantileSketch.loads(sk.dumps())
    assert back.count == 0
    assert math.isinf(back._min)


@given(values=streams)
@settings(max_examples=50, deadline=None)
def test_serialised_form_is_plain_json(values):
    doc = json.loads(make(values).dumps())
    assert set(doc) == {"relative_accuracy", "max_buckets", "buckets",
                        "zero_count", "count", "sum", "min", "max"}
