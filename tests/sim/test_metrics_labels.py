"""Labeled metrics: aggregation, cardinality bounds, series, export."""

import json

import pytest

from repro.sim import LabeledMetricsRegistry, Simulator
from repro.sim.metrics_registry import (
    OVERFLOW_LABEL,
    format_instrument,
    label_key,
)


@pytest.fixture
def reg():
    return LabeledMetricsRegistry()


# -- keys and formatting -------------------------------------------------

def test_label_key_is_order_insensitive_and_stringified():
    assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
    assert label_key({"a": "x", "b": 2}) == label_key({"b": 2, "a": "x"})
    assert format_instrument("n", ()) == "n"
    assert format_instrument("n", (("a", "1"), ("b", "2"))) \
        == "n{a=1,b=2}"


# -- aggregate forwarding ------------------------------------------------

def test_labeled_counter_rolls_up_into_aggregate(reg):
    reg.counter("net.bytes", purpose="fifo").add(100)
    reg.counter("net.bytes", purpose="rpc").add(50)
    reg.counter("net.bytes").add(1)  # direct aggregate update
    assert reg.counter("net.bytes").value == 151
    assert reg.counter("net.bytes", purpose="fifo").value == 100
    snap = reg.counters()
    assert snap["net.bytes"] == 151
    assert snap["net.bytes{purpose=rpc}"] == 50


def test_labeled_histogram_rolls_up_into_aggregate(reg):
    reg.histogram("lat", fn="a").observe(1.0)
    reg.histogram("lat", fn="b").observe(3.0)
    agg = reg.histogram("lat").summary()
    assert agg["count"] == 2
    assert agg["mean"] == pytest.approx(2.0)
    assert reg.histogram("lat", fn="a").summary()["count"] == 1
    assert "lat{fn=b}" in reg.histograms()


def test_labeled_gauge_aggregate_is_sum_of_levels(reg):
    reg.gauge("pool.size", pool="a").set(3, now=1.0)
    reg.gauge("pool.size", pool="b").set(2, now=1.0)
    assert reg.gauge("pool.size").level == 5
    reg.gauge("pool.size", pool="a").set(1, now=2.0)
    assert reg.gauge("pool.size").level == 3
    assert reg.gauge("pool.size", pool="b").level == 2
    assert reg.gauges(now=3.0)["pool.size"]["level"] == 3


def test_unlabeled_calls_are_plain_registry_api(reg):
    # The legacy interface is untouched: bare names, same totals.
    reg.counter("hits").add(2)
    reg.counter("hits").add(3)
    assert reg.counters() == {"hits": 5}


def test_kind_mismatch_is_an_error(reg):
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.histogram("x")
    with pytest.raises(TypeError):
        reg.gauge("x", node="n1")


# -- cardinality bound ---------------------------------------------------

def test_label_cardinality_cap_collapses_to_overflow():
    reg = LabeledMetricsRegistry(max_label_sets=2)
    reg.counter("ops", k="a").add(1)
    reg.counter("ops", k="b").add(1)
    reg.counter("ops", k="c").add(1)  # over the cap
    reg.counter("ops", k="d").add(2)  # also over; same overflow child
    assert reg.dropped_label_sets == 2
    overflow = format_instrument("ops", ((OVERFLOW_LABEL, "true"),))
    snap = reg.counters()
    assert snap[overflow] == 3
    assert snap["ops"] == 5  # aggregate still sees everything
    # Existing children keep working at the cap.
    reg.counter("ops", k="a").add(1)
    assert reg.counters()["ops{k=a}"] == 2


def test_max_label_sets_validation():
    with pytest.raises(ValueError):
        LabeledMetricsRegistry(max_label_sets=0)


# -- time series ---------------------------------------------------------

def test_sample_records_counter_and_gauge_series(reg):
    c = reg.counter("reqs", fn="f")
    g = reg.gauge("inflight")
    c.add(1)
    g.set(2, now=0.5)
    reg.sample(1.0)
    c.add(4)
    g.set(1, now=1.5)
    reg.sample(2.0)
    assert reg.series("reqs", fn="f") == [(1.0, 1.0), (2.0, 5.0)]
    assert reg.series("reqs") == [(1.0, 1.0), (2.0, 5.0)]
    assert reg.series("inflight") == [(1.0, 2.0), (2.0, 1.0)]
    assert reg.series("missing") == []
    assert reg.series("reqs", fn="nope") == []


def test_sampler_process_runs_on_interval(reg):
    sim = Simulator()
    c = reg.counter("ticks")

    def work():
        for _ in range(3):
            c.add(1)
            yield sim.timeout(1.0)

    sim.spawn(reg.sampler_process(sim, 1.0), inherit_context=False)
    sim.spawn(work())
    sim.run(until=3.5)
    points = reg.series("ticks")
    assert [t for t, _v in points] == [1.0, 2.0, 3.0]
    assert points[-1][1] == 3.0
    with pytest.raises(ValueError):
        next(reg.sampler_process(sim, 0.0))


# -- exporters -----------------------------------------------------------

def test_to_json_round_trips_and_is_serializable(reg, tmp_path):
    reg.counter("c", k="v").add(1)
    reg.gauge("g").set(2, now=1.0)
    reg.histogram("h").observe(0.5)
    reg.sample(1.0)
    doc = reg.to_json(now=2.0)
    assert doc["counters"]["c"] == 1
    assert doc["counters"]["c{k=v}"] == 1
    assert doc["gauges"]["g"]["level"] == 2
    assert doc["histograms"]["h"]["count"] == 1
    assert doc["series"]["c"] == [[1.0, 1.0]]
    path = tmp_path / "metrics.json"
    reg.write_json(str(path), now=2.0)
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(doc))


def test_line_protocol_output(reg):
    reg.counter("net.bytes", purpose="rpc").add(10)
    reg.gauge("inflight").set(1, now=0.5)
    lines = reg.to_line_protocol(now=1.0).splitlines()
    assert "net.bytes value=10.0 1000000000" in lines
    assert "net.bytes,purpose=rpc value=10.0 1000000000" in lines
    assert any(line.startswith("inflight level=1") for line in lines)


# -- windowed reads (the autoscale controller's view) --------------------

def test_series_window_returns_the_tail(reg):
    c = reg.counter("reqs", pool="p")
    for t in (1.0, 2.0, 3.0, 4.0):
        c.add(1)
        reg.sample(t)
    assert reg.series_window("reqs", 3.0, pool="p") \
        == [(3.0, 3.0), (4.0, 4.0)]
    assert reg.series_window("reqs", 0.0, pool="p") \
        == reg.series("reqs", pool="p")
    assert reg.series_window("reqs", 9.0, pool="p") == []
    assert reg.series_window("missing", 0.0) == []


def test_window_delta_sums_children_by_subset_filter(reg):
    """pool=... matches every child carrying that pair, whatever other
    labels (platform=...) ride along — the delta is the family growth
    over the window, not one child's."""
    a = reg.counter("colds", pool="p", platform="microvm")
    b = reg.counter("colds", pool="p", platform="wasm")
    other = reg.counter("colds", pool="q", platform="microvm")
    a.add(2)
    b.add(1)
    other.add(10)
    reg.sample(1.0)
    a.add(3)
    other.add(10)
    reg.sample(2.0)
    assert reg.window_delta("colds", 1.0, pool="p") == 3.0
    assert reg.window_delta("colds", 1.0, pool="q") == 10.0
    assert reg.window_delta("colds", 0.0, pool="p") == 6.0
    # No labels: the bare aggregate (sum of everything).
    assert reg.window_delta("colds", 1.0) == 13.0
    # Non-counter families and unknown names read as zero growth.
    reg.gauge("lvl").set(5, now=0.0)
    assert reg.window_delta("lvl", 0.0) == 0.0
    assert reg.window_delta("missing", 0.0) == 0.0


def test_window_delta_counts_instruments_born_inside_window(reg):
    reg.counter("colds", pool="old").add(1)
    reg.sample(1.0)
    reg.counter("colds", pool="new").add(4)  # born after t=1
    reg.sample(2.0)
    assert reg.window_delta("colds", 1.0, pool="new") == 4.0


def test_window_level_sums_gauges_by_subset_filter(reg):
    reg.gauge("size", pool="p", platform="m").set(2, now=0.0)
    reg.gauge("size", pool="p", platform="w").set(3, now=0.0)
    reg.gauge("size", pool="q").set(7, now=0.0)
    assert reg.window_level("size", pool="p") == 5.0
    assert reg.window_level("size", pool="q") == 7.0
    assert reg.window_level("size") == 12.0  # the aggregate
    assert reg.window_level("size", pool="nope") == 0.0
    assert reg.window_level("missing") == 0.0


# -- hot-path memo -------------------------------------------------------

def test_fast_cache_returns_identical_child_on_repeat(reg):
    first = reg.counter("hits", fn="a", node="n1")
    assert ("counter", "hits", ("fn", "a"), ("node", "n1")) in reg._fast
    assert reg.counter("hits", fn="a", node="n1") is first


def test_fast_cache_label_orders_share_one_child(reg):
    # Two call shapes, one instrument: the memo is keyed on kwargs
    # order but both entries resolve to the same canonical child.
    ab = reg.counter("hits", fn="a", node="n1")
    ba = reg.counter("hits", node="n1", fn="a")
    assert ab is ba
    ab.add(3)
    assert reg.counters()["hits{fn=a,node=n1}"] == 3
    assert len(reg._fast) == 2


def test_fast_cache_never_caches_overflow_children():
    reg = LabeledMetricsRegistry(max_label_sets=2)
    reg.counter("c", k="1").add(1)
    reg.counter("c", k="2").add(1)
    # Over the cap: collapses to __overflow__ and counts a drop —
    # on *every* call, so the overflow child must stay uncached.
    for expected in (1, 2, 3):
        over = reg.counter("c", k="over")
        assert reg.dropped_label_sets == expected
    assert ("counter", "c", ("k", "over")) not in reg._fast
    over.add(5)
    assert reg.counters()[f"c{{{OVERFLOW_LABEL}=true}}"] == 5
    # Materialized children still memoize.
    assert ("counter", "c", ("k", "1")) in reg._fast


def test_fast_cache_skips_unhashable_label_values(reg):
    child = reg.counter("c", k=["un", "hashable"])
    child.add(2)
    assert reg.counter("c", k=["un", "hashable"]) is child
    assert len(reg._fast) == 0


def test_kind_mismatch_still_raises_with_warm_cache(reg):
    reg.counter("m", k="1").add(1)
    with pytest.raises(TypeError):
        reg.histogram("m", k="1")
