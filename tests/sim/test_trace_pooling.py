"""Freelist pooling never leaks stale state across checkout.

The fast-path refactor recycles the kernel's dominant allocations —
trace spans from dropped deferred trees, engine timeouts, internal
kicks — through bounded freelists guarded by refcount checks. These
tests pin the two safety contracts: a recycled object is
indistinguishable from a fresh one (every field reassigned, no stale
parent/child/context/value), and an object the caller still holds is
never recycled out from under them.
"""

from repro.sim.engine import Simulator
from repro.sim.trace import (
    DEFER,
    SAMPLE,
    STATUS_OK,
    Tracer,
    _ORPHAN,
    _SPAN_POOL_LIMIT,
)


class _DeferTails:
    """Defer roots named ``tail`` (keep-on-error), sample the rest."""

    def decide(self, name, attributes):
        return DEFER if name == "tail" else SAMPLE


def _make_tracer(sim=None):
    tracer = Tracer(enabled=True)
    if sim is not None:
        tracer.bind(sim)
    tracer.set_sampler(_DeferTails())
    return tracer


def _run_clean_tail(tracer, children=3):
    """A deferred root that ends clean: its whole tree is discarded.

    A helper function (not inline in the test) so no frame keeps the
    spans alive — the pool's refcount check must see them free.
    """
    with tracer.span("tail", marker="stale"):
        for i in range(children):
            with tracer.span("tail.step", i=i, secret="leak-me"):
                pass


# -- span pool ----------------------------------------------------------
def test_dropped_tree_spans_enter_the_pool():
    tracer = _make_tracer()
    _run_clean_tail(tracer)
    assert tracer.deferred_dropped == 1
    assert tracer.span_count == 0
    assert len(tracer._span_pool) == 4  # root + 3 children
    assert all(s.end is not None for s in tracer._span_pool)


def test_recycled_span_has_no_stale_state():
    tracer = _make_tracer()
    _run_clean_tail(tracer)
    pooled_ids = [id(s) for s in tracer._span_pool]

    with tracer.span("fresh", k="v") as sp:
        # The checkout recycled a discarded span object...
        assert id(sp) in pooled_ids
        # ...and nothing of its previous life is observable: not the
        # name, attributes, parent link, child list, or sampling mark.
        assert sp.name == "fresh"
        assert sp.attributes == {"k": "v"}
        assert sp.parent_id is None
        assert sp._kids is None
        assert sp.status == STATUS_OK
        assert sp.error is None
        assert sp.sampling is None
        assert sp.end is None
    assert sp.end is not None
    assert tracer.span_count == 1


def test_recycled_span_gets_fresh_parent_linkage():
    tracer = _make_tracer()
    _run_clean_tail(tracer)

    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
    assert tracer.children(outer) == [inner]
    assert tracer.children(inner) == []


def test_held_span_is_never_recycled():
    tracer = _make_tracer()
    held = []
    with tracer.span("tail", marker=42) as root:
        held.append(root)
    assert tracer.deferred_dropped == 1

    # The dropped root sits in the graveyard, but the test still holds
    # it — checkout must skip it, and its data must survive.
    for i in range(4):
        with tracer.span("probe", i=i) as sp:
            assert sp is not held[0]
    assert held[0].name == "tail"
    assert held[0].attributes == {"marker": 42}
    assert held[0].end is not None


def test_span_pool_is_bounded():
    tracer = _make_tracer()
    per_tree = 5
    trees = _SPAN_POOL_LIMIT // per_tree + 10
    for _ in range(trees):
        _run_clean_tail(tracer, children=per_tree - 1)
    assert len(tracer._span_pool) <= _SPAN_POOL_LIMIT


def test_clear_does_not_pool_spans():
    # Cleared spans may still be held by callers (inspecting a root
    # across experiment phases is normal usage), so clear() must not
    # feed the freelist.
    tracer = _make_tracer()
    with tracer.span("work", k=1):
        pass
    tracer.clear()
    assert len(tracer._span_pool) == 0


def test_straggler_of_dropped_tree_records_nothing():
    sim = Simulator()
    tracer = _make_tracer(sim)
    pool_snapshots = []

    def child():
        # Opened inside the deferred root's context; still running when
        # the root ends clean and the tree is discarded.
        with tracer.span("late") as sp:
            yield sim.timeout(5.0)
            assert sp.sampling == _ORPHAN
            # A span opened *under* an orphan inherits the mark.
            with tracer.span("grand") as grand:
                assert grand.sampling == _ORPHAN
                yield sim.timeout(1.0)

    def root_proc():
        with tracer.span("tail"):
            sim.spawn(child())
            yield sim.timeout(1.0)

    def probe():
        yield sim.timeout(2.0)
        pool_snapshots.append(
            all(s.end is not None for s in tracer._span_pool))

    sim.spawn(root_proc())
    sim.spawn(probe())
    sim.run()

    assert tracer.deferred_dropped == 1
    assert len(tracer) == 0          # no flat records materialized
    assert tracer.span_count == 0    # stragglers dropped at end
    # Live (still-open) spans never entered the pool at discard time.
    assert pool_snapshots == [True]


# -- engine event pools -------------------------------------------------
def test_timeout_pool_recycles_without_stale_state():
    sim = Simulator()
    out = []

    def churn():
        for i in range(10):
            yield sim.timeout(0.5, value=i)

    def checker():
        yield sim.timeout(20.0)
        assert len(sim._timeout_pool) > 0
        t = sim.timeout(0.25, value="fresh")
        out.append((t.delay, t._value, t._ok))
        got = yield t
        out.append(got)

    sim.spawn(churn())
    sim.spawn(checker())
    sim.run()
    assert out == [(0.25, "fresh", True), "fresh"]


def test_held_timeout_is_not_recycled():
    sim = Simulator()
    held = []

    def proc():
        t = sim.timeout(1.0, value="keep")
        held.append(t)
        yield t
        for _ in range(5):
            fresh = sim.timeout(0.1)
            assert fresh is not held[0]
            yield fresh

    sim.spawn(proc())
    sim.run()
    assert held[0]._value == "keep"
    assert held[0] not in sim._timeout_pool


def test_kick_pool_populates_and_processes_complete():
    sim = Simulator()
    done = []

    def proc(i):
        yield sim.timeout(float(i) * 0.01)
        done.append(i)

    for i in range(50):
        sim.spawn(proc(i))
    sim.run()
    assert done == list(range(50))
    # Bootstrap kicks were recycled rather than leaked.
    assert len(sim._kick_pool) > 0
