"""Sketch-backed histograms: backend opt-in, rollups, export parity."""

import math

import pytest

from repro.sim.metrics import EmptyHistogramError, Histogram
from repro.sim.metrics_registry import LabeledMetricsRegistry
from repro.sim.sketch import QuantileSketch


# -- Histogram backend ------------------------------------------------------

def test_exact_backend_is_the_default_and_rejects_sketch_kwargs():
    h = Histogram("h")
    assert h.backend == "exact"
    assert h.sketch is None
    with pytest.raises(ValueError):
        Histogram("h", relative_accuracy=0.01)
    with pytest.raises(ValueError):
        Histogram("h", max_sketch_buckets=64)
    with pytest.raises(ValueError):
        Histogram("h", backend="nope")


def test_exact_summary_key_set_is_unchanged():
    """The gate fingerprints digest these keys; they must not grow."""
    h = Histogram("h")
    h.observe(1.0)
    assert set(h.summary()) == {"count", "mean", "min", "p50", "p99",
                                "max"}


def test_sketch_backend_tracks_quantiles_within_bound():
    h = Histogram("h", backend="sketch")
    assert h.sketch is not None
    for i in range(1000):
        h.observe(0.010 * (1 + (i % 10) / 100.0))
    assert h.count == 1000
    assert h.percentile(50) == pytest.approx(0.0105, rel=0.03)
    summary = h.summary()
    assert {"q50", "q90", "q99"} <= set(summary)
    assert summary["p50"] == summary["q50"]
    assert summary["p99"] == summary["q99"]


def test_sketch_backend_empty_and_error_paths():
    h = Histogram("h", backend="sketch")
    with pytest.raises(EmptyHistogramError):
        h.percentile(50)
    assert math.isnan(h.summary()["q99"])
    assert math.isnan(h.fraction_below(1.0))


def test_sketch_backend_accepts_tuning_kwargs():
    h = Histogram("h", backend="sketch", relative_accuracy=0.05,
                  max_sketch_buckets=64)
    assert h.sketch.relative_accuracy == 0.05
    assert h.sketch.max_buckets == 64


def test_exemplars_identical_across_backends():
    for backend in ("exact", "sketch"):
        h = Histogram("h", backend=backend)
        h.observe(0.004, exemplar="trace-1")
        h.observe(1.7, exemplar="trace-2")
        pairs = [p for bucket in h.exemplars().values() for p in bucket]
        assert sorted(t for _, t in pairs) == ["trace-1", "trace-2"]


# -- registry rollups -------------------------------------------------------

def _sketch_registry(**kwargs):
    reg = LabeledMetricsRegistry(histogram_backend="sketch", **kwargs)
    for fn, lat in (("a", 0.010), ("a", 0.012), ("b", 0.200),
                    ("b", 0.210), ("a", 0.011)):
        reg.histogram("latency", fn=fn).observe(lat)
    return reg


def test_registry_backend_applies_to_families_and_children():
    reg = _sketch_registry()
    assert reg.histogram("latency").backend == "sketch"
    assert reg.histogram("latency", fn="a").backend == "sketch"


def test_merged_sketch_rolls_children_up_losslessly():
    reg = _sketch_registry()
    merged = reg.merged_sketch("latency", fn="a")
    assert merged.count == 3
    everything = reg.merged_sketch("latency")
    assert everything.count == 5
    # The aggregate already holds every forwarded sample: the unlabeled
    # rollup equals the aggregate's own sketch.
    assert everything._buckets == reg.histogram("latency").sketch._buckets


def test_merged_quantile_reads_the_rollup():
    reg = _sketch_registry()
    # fn="a" holds {0.010, 0.011, 0.012}: q99 must land inside the top
    # order-statistic bracket, within the sketch's relative accuracy.
    q99_a = reg.merged_quantile("latency", 99, fn="a")
    assert 0.011 * 0.98 <= q99_a <= 0.012 * 1.02
    assert reg.merged_quantile("latency", 99, fn="zzz") is None


def test_merged_sketch_is_none_for_exact_families():
    reg = LabeledMetricsRegistry()
    reg.histogram("latency", fn="a").observe(0.01)
    assert reg.merged_sketch("latency") is None
    assert reg.merged_quantile("latency", 99) is None


def test_per_family_backend_override():
    reg = LabeledMetricsRegistry()
    reg.set_histogram_backend("tail_latency", "sketch")
    reg.histogram("tail_latency", fn="a").observe(0.01)
    reg.histogram("other").observe(0.01)
    assert reg.histogram("tail_latency").backend == "sketch"
    assert reg.histogram("other").backend == "exact"
    with pytest.raises(ValueError):
        reg.set_histogram_backend("other", "sketch")  # family exists


# -- export parity ----------------------------------------------------------

def _line_fields(line):
    """Parse one line-protocol line into its field dict."""
    fields = line.split(" ")[1]
    return {k: float(v) for k, v in
            (pair.split("=") for pair in fields.split(","))}


def test_json_and_line_protocol_export_identical_quantiles():
    reg = _sketch_registry()
    json_doc = reg.to_json(now=12.0)
    lines = reg.to_line_protocol(now=12.0).splitlines()
    hist_lines = {line.split(" ")[0]: line for line in lines
                  if line.startswith("latency")
                  and "exemplar_value" not in line}
    for name, summary in json_doc["histograms"].items():
        # JSON names children latency{fn=a}; line protocol latency,fn=a.
        line_name = name.replace("{", ",").replace("}", "")
        fields = _line_fields(hist_lines[line_name])
        for key in ("q50", "q90", "q99", "p50", "p99", "count"):
            assert fields[key] == summary[key], (name, key)


def test_exemplar_lines_still_interleave_for_sketch_families():
    reg = LabeledMetricsRegistry(histogram_backend="sketch")
    reg.histogram("latency", fn="a").observe(0.01, exemplar="t-1")
    reg.histogram("latency", fn="a").observe(2.5, exemplar="t-2")
    lines = reg.to_line_protocol(now=1.0).splitlines()
    exemplar_lines = [ln for ln in lines if "exemplar_value" in ln]
    assert len(exemplar_lines) == 4  # aggregate + child, two exemplars
    assert any("trace_id=t-1" in ln for ln in exemplar_lines)
    assert any("le=" in ln for ln in exemplar_lines)


def test_sketch_families_survive_json_export_and_series_sampling():
    reg = _sketch_registry()
    reg.sample(5.0)
    doc = reg.to_json(now=5.0)
    assert doc["histograms"]["latency"]["count"] == 5.0
    assert "q90" in doc["histograms"]["latency{fn=a}"]
