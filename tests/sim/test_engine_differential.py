"""Differential tests: the fast engine against the frozen reference.

The tiered schedule (immediate deque / timer wheel / far heap) and the
counting ``AllOf`` join are pure speed refactors — every observable
ordering must match the pre-refactor engine snapshotted in
:mod:`repro.bench._reference`. These tests replay the same pinned
random workload on both engines and require identical event traces,
plus pin the counting join's semantics directly.
"""

from repro.bench._reference import engine as reference
from repro.sim import Simulator
from repro.sim.engine import WHEEL_GRANULARITY, WHEEL_SLOTS
from repro.sim.rng import RandomStream

#: Delay menu spanning every storage tier: zero-delay immediates, the
#: wheel's first/last buckets, and far-heap horizons that force wheel
#: re-tiering as the clock advances.
_HORIZON = WHEEL_GRANULARITY * WHEEL_SLOTS


def _pinned_delays(count):
    rng = RandomStream(2026, "engine-differential")
    tiers = (
        lambda: 0.0,                                  # immediate
        lambda: rng.uniform(0.0, WHEEL_GRANULARITY),  # first bucket
        lambda: rng.uniform(0.0, _HORIZON),           # anywhere in wheel
        lambda: _HORIZON + rng.uniform(0.0, 5.0),     # just past horizon
        lambda: rng.uniform(50.0, 500.0),             # deep far heap
    )
    return [tiers[int(rng.uniform(0, len(tiers)))]() for _ in range(count)]


def _workload(sim_cls, delays):
    """Run a mixed-tier workload; return the observable event trace."""
    sim = sim_cls()
    log = []

    def hopper(tag, naps):
        for d in naps:
            yield sim.timeout(d)
            log.append((tag, repr(sim.now)))

    def joiner(tag, naps):
        waits = [sim.spawn(hopper(f"{tag}.c{i}", [d]))
                 for i, d in enumerate(naps)]
        values = yield sim.all_of(waits)
        log.append((tag, repr(sim.now), len(values)))

    chunks = [delays[i::7] for i in range(7)]
    for i in range(5):
        sim.spawn(hopper(f"h{i}", chunks[i]))
    sim.spawn(joiner("j0", chunks[5]))
    sim.spawn(joiner("j1", chunks[6]))
    sim.run()
    return log, repr(sim.now), sim._seq


def test_fast_engine_matches_reference_ordering():
    delays = _pinned_delays(400)
    current = _workload(Simulator, delays)
    frozen = _workload(reference.Simulator, delays)
    assert current == frozen


def test_fast_engine_matches_reference_under_run_until():
    delays = _pinned_delays(150)

    def staged(sim_cls):
        sim = sim_cls()
        log = []

        def proc(tag, naps):
            for d in naps:
                yield sim.timeout(d)
                log.append((tag, repr(sim.now)))

        for i in range(3):
            sim.spawn(proc(f"p{i}", delays[i::3]))
        # Stop inside the wheel horizon, then drain: re-tiering across
        # the boundary must not reorder anything.
        sim.run(until=_HORIZON / 2)
        log.append(("cut", repr(sim.now)))
        sim.run()
        return log, repr(sim.now)

    assert staged(Simulator) == staged(reference.Simulator)


# -- AllOf counting join -------------------------------------------------
def test_all_of_values_follow_list_order_not_completion_order():
    sim = Simulator()
    out = []

    def proc():
        first = sim.timeout(3.0, value="slow")
        second = sim.timeout(1.0, value="fast")
        values = yield sim.all_of([first, second])
        out.append(values)

    sim.spawn(proc())
    sim.run()
    assert out == [["slow", "fast"]]


def test_all_of_with_already_processed_children():
    sim = Simulator()
    out = []

    def proc():
        done = sim.timeout(1.0, value="early")
        yield sim.timeout(2.0)      # `done` fires and is processed
        pending = sim.timeout(1.0, value="late")
        values = yield sim.all_of([done, pending])
        out.append((values, repr(sim.now)))

    sim.spawn(proc())
    sim.run()
    assert out == [(["early", "late"], repr(3.0))]


def test_all_of_empty_list_fires_immediately():
    sim = Simulator()
    out = []

    def proc():
        values = yield sim.all_of([])
        out.append((values, sim.now))

    sim.spawn(proc())
    sim.run()
    assert out == [([], 0.0)]


def test_all_of_duplicate_children_count_once_each():
    # The counting join decrements once per registered callback; a
    # duplicated child appears twice in the list and must be counted
    # twice, not collapse the join early.
    sim = Simulator()
    out = []

    def proc():
        shared = sim.timeout(1.0, value="x")
        values = yield sim.all_of([shared, shared, sim.timeout(2.0, value="y")])
        out.append((values, repr(sim.now)))

    sim.spawn(proc())
    sim.run()
    assert out == [(["x", "x", "y"], repr(2.0))]


def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()
    out = []

    def failing():
        yield sim.timeout(1.0)
        raise RuntimeError("child boom")

    def proc():
        kids = [sim.spawn(failing()), sim.timeout(100.0)]
        try:
            yield sim.all_of(kids)
        except RuntimeError as exc:
            out.append((str(exc), repr(sim.now)))

    sim.spawn(proc())
    # The join fails at t=1 and its waiter absorbs the exception; the
    # still-pending timeout then drains with no waiters, so the run
    # itself completes cleanly.
    sim.run()
    assert out == [("child boom", repr(1.0))]
