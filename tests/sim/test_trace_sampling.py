"""Head-based trace sampling: policies, propagation, error tail."""

import pytest

from repro.sim import (
    DEFER,
    DROP,
    NULL_SPAN,
    SAMPLE,
    AlwaysSample,
    ErrorTailSampler,
    KeyedRateSampler,
    NeverSample,
    ProbabilisticSampler,
    Simulator,
    Tracer,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


# -- policy decisions ----------------------------------------------------

def test_policy_extremes_and_validation():
    assert AlwaysSample().decide("invoke", {}) == SAMPLE
    assert NeverSample().decide("invoke", {}) == DROP
    assert ProbabilisticSampler(1.0).decide("invoke", {}) == SAMPLE
    assert ProbabilisticSampler(0.0).decide("invoke", {}) == DROP
    with pytest.raises(ValueError):
        ProbabilisticSampler(1.5)
    with pytest.raises(ValueError):
        KeyedRateSampler("fn", {"f": 2.0})
    with pytest.raises(ValueError):
        KeyedRateSampler("fn", {}, default=-0.1)


def test_probabilistic_sampler_is_deterministic():
    a = [ProbabilisticSampler(0.3, seed=7).decide("r", {})
         for _ in range(1)]
    # Same seed, fresh stream: identical decision sequence.
    s1 = ProbabilisticSampler(0.3, seed=7)
    s2 = ProbabilisticSampler(0.3, seed=7)
    seq1 = [s1.decide("r", {}) for _ in range(50)]
    seq2 = [s2.decide("r", {}) for _ in range(50)]
    assert seq1 == seq2
    assert SAMPLE in seq1 and DROP in seq1
    assert a[0] == seq1[0]


def test_keyed_rate_sampler_routes_by_attribute():
    policy = KeyedRateSampler("fn", {"hot": 1.0, "cold": 0.0},
                              default=1.0)
    assert policy.decide("invoke", {"fn": "hot"}) == SAMPLE
    assert policy.decide("invoke", {"fn": "cold"}) == DROP
    assert policy.decide("invoke", {"fn": "other"}) == SAMPLE
    assert policy.decide("invoke", {}) == SAMPLE


def test_error_tail_upgrades_drop_to_defer():
    policy = ErrorTailSampler(NeverSample())
    assert policy.decide("invoke", {}) == DEFER
    assert ErrorTailSampler(AlwaysSample()).decide("invoke", {}) == SAMPLE


# -- tracer integration --------------------------------------------------

def test_unsampled_root_yields_null_span_tree():
    clock = FakeClock()
    tracer = Tracer(enabled=True, clock=clock, sampler=NeverSample())
    with tracer.span("invoke", fn="f") as root:
        assert root is NULL_SPAN
        assert tracer.current_span is None
        with tracer.span("child") as child:
            assert child is NULL_SPAN
    assert tracer.span_count == 0
    assert tracer.unsampled_roots == 1
    assert tracer.sampled_roots == 0
    # The next root gets a fresh decision (marker cleared on exit).
    tracer.set_sampler(AlwaysSample())
    with tracer.span("invoke") as again:
        assert again is not NULL_SPAN
    assert tracer.sampled_roots == 1


def test_unsampled_children_share_the_null_singleton():
    """Inside an unsampled root, child span() calls allocate nothing:
    they return the one NULL_SPAN object itself."""
    tracer = Tracer(enabled=True, sampler=NeverSample())
    with tracer.span("invoke"):
        results = [tracer.span(f"child-{i}") for i in range(10)]
    assert all(r is NULL_SPAN for r in results)
    # The dropped-root context manager is shared too.
    assert tracer.span("invoke") is tracer.span("invoke")


def test_sampled_roots_record_normally():
    clock = FakeClock()
    tracer = Tracer(enabled=True, clock=clock, sampler=AlwaysSample())
    with tracer.span("invoke", fn="f") as root:
        clock.tick()
        with tracer.span("child"):
            clock.tick()
    assert tracer.span_count == 2
    assert tracer.children(root)[0].name == "child"
    assert tracer.sampled_roots == 1
    assert tracer.unsampled_roots == 0


def test_decision_propagates_across_spawn():
    """A spawned process inherits its parent's sampling verdict."""
    sim = Simulator()
    tracer = Tracer(enabled=True,
                    sampler=KeyedRateSampler("fn", {"drop": 0.0},
                                             default=1.0)).bind(sim)
    seen = {}

    def child(tag):
        with tracer.span("work", tag=tag) as sp:
            seen[tag] = sp
            yield sim.timeout(1)

    def root(fn, tag):
        with tracer.span("invoke", fn=fn):
            yield sim.spawn(child(tag))

    sim.spawn(root("drop", "dropped"))
    sim.spawn(root("keep", "kept"))
    sim.run()
    assert seen["dropped"] is NULL_SPAN
    assert seen["kept"] is not NULL_SPAN
    assert seen["kept"].name == "work"
    # Only the sampled tree's spans exist.
    names = {s.name for s in tracer.spans()}
    assert names == {"invoke", "work"}
    assert tracer.sampled_roots == 1
    assert tracer.unsampled_roots == 1


def test_error_tail_keeps_only_erroring_trees():
    clock = FakeClock()
    tracer = Tracer(enabled=True, clock=clock,
                    sampler=ErrorTailSampler(NeverSample()))

    # A clean tree: recorded provisionally, then discarded at root end.
    with tracer.span("invoke", n=1):
        clock.tick()
        with tracer.span("step"):
            clock.tick()
    assert tracer.span_count == 0
    assert tracer.deferred_dropped == 1

    # An erroring tree: kept, marked as the error tail.
    with pytest.raises(RuntimeError):
        with tracer.span("invoke", n=2) as root:
            clock.tick()
            with tracer.span("step"):
                raise RuntimeError("boom")
    assert tracer.deferred_kept == 1
    assert root.sampling == "error_tail"
    kept = {s.name for s in tracer.spans()}
    assert kept == {"invoke", "step"}
    # Compat records of the kept tree were flushed.
    assert tracer.select("invoke")


def test_error_tail_with_simulated_fanout():
    """A deferred verdict rides spawn, and one failing branch keeps
    the whole tree."""
    sim = Simulator()
    tracer = Tracer(enabled=True,
                    sampler=ErrorTailSampler(NeverSample())).bind(sim)

    def branch(fail):
        with tracer.span("branch", fail=fail):
            yield sim.timeout(1)
            if fail:
                raise ValueError("branch failed")

    def root(fail):
        with tracer.span("invoke", fail=fail):
            proc = sim.spawn(branch(fail))
            try:
                yield proc
            except ValueError:
                pass

    sim.spawn(root(False))
    sim.run()
    assert tracer.span_count == 0

    sim2 = Simulator()
    tracer2 = Tracer(enabled=True,
                     sampler=ErrorTailSampler(NeverSample())).bind(sim2)

    def root2():
        with tracer2.span("invoke"):
            proc = sim2.spawn(branch2())
            try:
                yield proc
            except ValueError:
                pass

    def branch2():
        with tracer2.span("branch"):
            yield sim2.timeout(1)
            raise ValueError("branch failed")

    sim2.spawn(root2())
    sim2.run()
    assert {s.name for s in tracer2.spans()} == {"invoke", "branch"}
    assert tracer2.deferred_kept == 1


def test_clear_resets_sampling_state():
    tracer = Tracer(enabled=True,
                    sampler=ErrorTailSampler(NeverSample()))
    cm = tracer.span("invoke")
    cm.__enter__()
    tracer.clear()
    assert tracer.span_count == 0
    assert tracer._deferred_records == {}
