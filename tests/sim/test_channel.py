"""Tests for the bounded Channel primitive and FIFO backpressure."""

import pytest

from repro.core import PCSICloud
from repro.net import SizedPayload
from repro.sim import Channel, Simulator


def test_channel_put_get_roundtrip():
    sim = Simulator()
    chan = Channel(sim, capacity=2)
    got = []

    def flow():
        yield chan.put("a")
        yield chan.put("b")
        got.append((yield chan.get()))
        got.append((yield chan.get()))

    sim.run_until_event(sim.spawn(flow()))
    assert got == ["a", "b"]


def test_channel_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, capacity=0)


def test_unbounded_channel_never_blocks_producer():
    sim = Simulator()
    chan = Channel(sim)

    def producer():
        for i in range(100):
            yield chan.put(i)

    sim.run_until_event(sim.spawn(producer()))
    assert len(chan) == 100


def test_full_channel_blocks_producer_until_drained():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    log = []

    def producer():
        yield chan.put("first")
        log.append(("put-first", sim.now))
        yield chan.put("second")  # blocks: capacity 1, nobody reading
        log.append(("put-second", sim.now))

    def consumer():
        yield sim.timeout(5.0)
        item = yield chan.get()
        log.append(("got", item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert log[0] == ("put-first", 0.0)
    assert log[1] == ("got", "first", 5.0)
    assert log[2] == ("put-second", 5.0)  # unblocked by the get


def test_channel_get_blocks_until_put():
    sim = Simulator()
    chan = Channel(sim, capacity=4)
    got = []

    def consumer():
        got.append((yield chan.get()))

    def producer():
        yield sim.timeout(3.0)
        yield chan.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == ["late"]


def test_channel_fifo_order_through_backpressure():
    sim = Simulator()
    chan = Channel(sim, capacity=2)
    order = []

    def producer():
        for i in range(6):
            yield chan.put(i)

    def consumer():
        for _ in range(6):
            yield sim.timeout(1.0)
            order.append((yield chan.get()))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert order == [0, 1, 2, 3, 4, 5]


def test_direct_handoff_when_getter_waiting():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    got = []

    def consumer():
        got.append((yield chan.get()))

    def producer():
        yield sim.timeout(1.0)
        yield chan.put("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == ["x"]
    assert len(chan) == 0


# --------------------------------------------------- kernel FIFO integration
def test_bounded_fifo_backpressure_through_kernel():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=33)
    fifo = cloud.create_fifo(host_node="rack0-n0", capacity=2)
    client = cloud.client_node()
    progress = []

    def producer():
        for i in range(4):
            yield from cloud.op_fifo_put(client, fifo, SizedPayload(64))
            progress.append((f"put-{i}", cloud.sim.now))

    def consumer():
        yield cloud.sim.timeout(1.0)
        for i in range(4):
            yield from cloud.op_fifo_get(client, fifo)
            progress.append((f"get-{i}", cloud.sim.now))

    cloud.sim.spawn(producer())
    cloud.sim.spawn(consumer())
    cloud.sim.run()
    times = dict(progress)
    assert times["put-1"] < 0.5        # fits in the buffer
    assert times["put-2"] >= 1.0       # blocked until the first get
    assert times["put-3"] >= 1.0       # likewise gated on the drain


def test_unbounded_fifo_unchanged():
    cloud = PCSICloud(racks=2, nodes_per_rack=2, gpu_nodes_per_rack=0)
    fifo = cloud.create_fifo(host_node="rack0-n0")
    client = cloud.client_node()

    def flow():
        for _ in range(10):
            yield from cloud.op_fifo_put(client, fifo, SizedPayload(8))
        item = yield from cloud.op_fifo_get(client, fifo)
        return item

    assert cloud.run_process(flow()).nbytes == 8
