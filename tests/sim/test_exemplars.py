"""Histogram exemplars: reservoirs, sampled-root safety, exports."""

import json
import math

import pytest

from repro.cluster.resources import ResourceVector
from repro.core.functions import FunctionImpl
from repro.core.system import PCSICloud
from repro.faas.platforms import CONTAINER
from repro.sim.metrics import Histogram
from repro.sim.metrics_registry import LabeledMetricsRegistry
from repro.sim.trace import ProbabilisticSampler


# -- reservoir mechanics -------------------------------------------------

def test_exemplar_reservoir_bounded_under_heavy_traffic():
    h = Histogram("lat", exemplar_reservoir=4)
    for i in range(10_000):
        h.observe(0.003, exemplar=i)  # all land in one bucket
    buckets = h.exemplars()
    assert len(buckets) == 1
    (pairs,) = buckets.values()
    assert len(pairs) == 4
    # Most-recent-K retention, deterministically.
    assert [trace_id for _v, trace_id in pairs] == [9996, 9997, 9998, 9999]


def test_exemplars_bucketed_by_value():
    h = Histogram("lat")
    h.observe(0.0002, exemplar="fast")
    h.observe(2.0, exemplar="slow")
    h.observe(0.5)  # no exemplar: sample counted, nothing retained
    assert h.count == 3
    fast = h.exemplars_in_bucket(0.0002)
    slow = h.exemplars_in_bucket(2.0)
    assert [t for _v, t in fast] == ["fast"]
    assert [t for _v, t in slow] == ["slow"]
    assert h.exemplars_in_bucket(0.5) == []


def test_exemplars_near_percentile_falls_back_to_neighbor():
    h = Histogram("lat")
    for _ in range(99):
        h.observe(0.001)
    h.observe(5.0)  # the tail sample carries no exemplar...
    h.observe(0.9, exemplar="nearby")  # ...but a neighbor does
    near = h.exemplars_near_percentile(99)
    assert [t for _v, t in near] == ["nearby"]


def test_exemplar_reservoir_must_hold_one():
    with pytest.raises(ValueError):
        Histogram("lat", exemplar_reservoir=0)


# -- sampled-root safety -------------------------------------------------

def _serve_cloud(sampler=None, requests=8):
    cloud = PCSICloud(seed=7, trace=True, sampler=sampler,
                      keep_alive=600.0)
    ref = cloud.define_function("echo", [FunctionImpl(
        "cpu", CONTAINER, ResourceVector(cpus=1, memory=1024 ** 3),
        work_ops=5e8)])
    client = cloud.client_node()

    def flow():
        for _ in range(requests):
            yield from cloud.invoke(client, ref)
            yield cloud.sim.timeout(1.0)

    cloud.run_process(flow())
    return cloud


def test_invoke_exemplars_reference_retained_roots():
    cloud = _serve_cloud()
    root_ids = {root.span_id for root in cloud.tracer.roots()}
    all_ex = cloud.metrics.all_exemplars()
    assert "invoke.latency" in " ".join(all_ex)  # labeled children export
    seen = 0
    for buckets in all_ex.values():
        for bucket in buckets:
            for _value, trace_id in bucket["exemplars"]:
                seen += 1
                assert trace_id in root_ids
                root = cloud.tracer.get_span(trace_id)
                assert root.parent_id is None
    assert seen > 0


def test_head_sampled_out_requests_leave_no_exemplars():
    # With head sampling, dropped trees must never be referenced: every
    # retained exemplar id must resolve to a *kept* root.
    cloud = _serve_cloud(sampler=ProbabilisticSampler(0.5, seed=7),
                         requests=12)
    root_ids = {root.span_id for root in cloud.tracer.roots()}
    exemplar_ids = [trace_id
                    for buckets in cloud.metrics.all_exemplars().values()
                    for bucket in buckets
                    for _v, trace_id in bucket["exemplars"]]
    assert exemplar_ids, "sampled-in requests should retain exemplars"
    assert all(tid in root_ids for tid in exemplar_ids)
    # And sampling actually dropped something, or the test is vacuous.
    assert len(root_ids) < 12


def test_untraced_cloud_records_no_exemplars():
    cloud = PCSICloud(seed=7)  # trace=False -> NULL_SPAN everywhere
    ref = cloud.define_function("echo", [FunctionImpl(
        "cpu", CONTAINER, ResourceVector(cpus=1, memory=1024 ** 3),
        work_ops=5e8)])
    cloud.run_process(cloud.invoke(cloud.client_node(), ref))
    assert cloud.metrics.all_exemplars() == {}


# -- export round-trips --------------------------------------------------

def test_registry_json_export_round_trip():
    reg = LabeledMetricsRegistry()
    reg.histogram("op.latency", op="read").observe(0.004, exemplar=42)
    reg.histogram("op.latency", op="read").observe(7.5, exemplar=43)
    doc = json.loads(json.dumps(reg.to_json(now=1.0)))
    ex = doc["exemplars"]
    entries = [b for buckets in ex.values() for b in buckets]
    pairs = [tuple(p) for b in entries for p in b["exemplars"]]
    assert (0.004, 42) in pairs
    assert (7.5, 43) in pairs
    # The +Inf catch-all bound survives Python's JSON round-trip.
    assert any(b["le"] == math.inf or b["le"] <= 10.0 for b in entries)


def test_line_protocol_emits_exemplar_lines():
    reg = LabeledMetricsRegistry()
    reg.histogram("op.latency", op="read").observe(0.004, exemplar=42)
    out = reg.to_line_protocol(now=1.0)
    exemplar_lines = [ln for ln in out.splitlines() if "exemplar_value" in ln]
    assert len(exemplar_lines) == 2  # labeled child + unlabeled aggregate
    assert any("trace_id=42" in ln for ln in exemplar_lines)


def test_p99_bucket_traceable_to_concrete_span_tree():
    """Acceptance: a p99 invoke.latency bucket resolves, through the
    exported metrics JSON alone, to a retained invoke span tree."""
    cloud = _serve_cloud(requests=10)
    doc = cloud.metrics.to_json(cloud.sim.now)
    # Locate the aggregate invoke.latency histogram's exemplars.
    agg = cloud.metrics.histogram("invoke.latency")
    p99 = agg.p99
    near = agg.exemplars_near_percentile(99)
    assert near, "the p99 bucket must retain at least one exemplar"
    _value, trace_id = near[-1]
    # The same pair is present in the exported JSON document.
    exported = [tuple(p)
                for bucket in doc["exemplars"]["invoke.latency"]
                for p in bucket["exemplars"]]
    assert (_value, trace_id) in exported
    # And the id opens a real retained span tree rooted at an invoke.
    root = cloud.tracer.get_span(trace_id)
    assert root is not None and root.parent_id is None
    names = {span.name for span in cloud.tracer.walk(root)}
    assert "invoke" in names and "execute" in names
    assert p99 >= _value or agg.bucket_index(p99) >= \
        agg.bucket_index(_value)
