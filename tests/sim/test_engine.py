"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    MS,
    US,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_empty_run_leaves_time_at_zero():
    sim = Simulator()
    sim.run()
    assert sim.now == 0.0


def test_run_until_advances_time_even_with_no_events():
    sim = Simulator()
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(3 * MS)
        seen.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [3 * MS]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(sim):
        got.append((yield sim.timeout(1.0, value="payload")))

    sim.spawn(proc(sim))
    sim.run()
    assert got == ["payload"]


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    stamps = []

    def proc(sim):
        for _ in range(4):
            yield sim.timeout(0.25)
            stamps.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert stamps == [0.25, 0.5, 0.75, 1.0]


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_delivered_to_waiter():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(2.0)
        return 42

    def parent(sim):
        value = yield sim.spawn(child(sim))
        results.append((sim.now, value))

    sim.spawn(parent(sim))
    sim.run()
    assert results == [(2.0, 42)]


def test_waiting_on_already_finished_process():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1.0)
        return "done"

    def parent(sim, child_proc):
        yield sim.timeout(5.0)
        value = yield child_proc  # already processed by now
        results.append((sim.now, value))

    child_proc = sim.spawn(child(sim))
    sim.spawn(parent(sim, child_proc))
    sim.run()
    assert results == [(5.0, "done")]


def test_uncaught_exception_in_unwatched_process_propagates():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    sim.spawn(bad(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_exception_propagates_to_waiting_parent():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent(sim):
        try:
            yield sim.spawn(bad(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(parent(sim))
    sim.run()
    assert caught == ["inner"]


def test_event_succeed_twice_is_error():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_manual_event_wakeup():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter(sim):
        value = yield gate
        log.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(7.0)
        gate.succeed("open")

    sim.spawn(waiter(sim))
    sim.spawn(opener(sim))
    sim.run()
    assert log == [(7.0, "open")]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    log = []

    def proc(sim):
        values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
        log.append((sim.now, values))

    sim.spawn(proc(sim))
    sim.run()
    assert log == [(3.0, ["a", "b"])]


def test_any_of_fires_on_first():
    sim = Simulator()
    log = []

    def proc(sim):
        value = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(2.0, "fast")])
        log.append((sim.now, value))

    sim.spawn(proc(sim))
    sim.run()
    assert log == [(2.0, "fast")]


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(4.0)
        victim.interrupt(cause="preempt")

    victim = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, victim))
    sim.run()
    assert log == [(4.0, "preempt")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.spawn(bad(sim))
    with pytest.raises(SimulationError, match="must.*yield Event"):
        sim.run()


def test_run_until_stops_mid_simulation():
    sim = Simulator()
    log = []

    def proc(sim):
        for _ in range(10):
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.spawn(proc(sim))
    sim.run(until=4.5)
    assert log == [1.0, 2.0, 3.0, 4.0]
    assert sim.now == 4.5
    sim.run()
    assert log[-1] == 10.0


def test_run_until_boundary_is_inclusive():
    # Pinned contract (see Simulator.run docstring): an event scheduled
    # exactly at ``until`` is processed; only strictly-later events are
    # left pending. Must survive any internal re-tiering (immediate
    # queue / timer wheel / far heap) of the schedule.
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(1.0)
        log.append(("at", sim.now))
        yield sim.timeout(2.0)       # fires exactly at until=3.0
        log.append(("boundary", sim.now))
        yield sim.timeout(0.5)       # strictly after: must stay pending
        log.append(("late", sim.now))

    sim.spawn(proc(sim))
    sim.run(until=3.0)
    assert log == [("at", 1.0), ("boundary", 3.0)]
    assert sim.now == 3.0
    sim.run()
    assert log[-1] == ("late", 3.5)


def test_run_until_in_the_past_is_an_error():
    sim = Simulator()
    sim.run(until=2.0)
    with pytest.raises(ValueError, match="in the past"):
        sim.run(until=1.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return "finished"

    proc_event = sim.spawn(proc(sim))
    assert sim.run_until_event(proc_event) == "finished"
    assert sim.now == 2.5


def test_run_until_event_raises_on_failure():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        raise KeyError("missing")

    def parent(sim):
        yield sim.spawn(proc(sim))

    parent_proc = sim.spawn(parent(sim))
    with pytest.raises(KeyError):
        sim.run_until_event(parent_proc)


def test_run_until_event_detects_drained_schedule():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimulationError, match="drained"):
        sim.run_until_event(never)


def test_microsecond_scale_precision():
    sim = Simulator()
    stamps = []

    def proc(sim):
        yield sim.timeout(17e-9)  # a Wasm call from Table 1
        stamps.append(sim.now)
        yield sim.timeout(200 * US)  # 2021 DC RTT
        stamps.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert stamps[0] == pytest.approx(17e-9)
    assert stamps[1] == pytest.approx(17e-9 + 200e-6)
