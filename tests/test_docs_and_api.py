"""Meta-tests: documentation coverage and public-API hygiene."""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro.sim", "repro.cluster", "repro.net", "repro.security",
    "repro.storage", "repro.cost", "repro.faas", "repro.core",
    "repro.baselines", "repro.workloads", "repro.crdt", "repro.verify",
    "repro.bench",
]


def walk_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.name.startswith("_"):
                continue
            yield importlib.import_module(f"{package_name}.{info.name}")


def test_every_module_has_a_docstring():
    undocumented = [m.__name__ for m in walk_modules()
                    if not (m.__doc__ or "").strip()]
    assert undocumented == []


def test_every_public_class_and_function_documented():
    missing = []
    for module in walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert missing == [], f"undocumented public items: {missing}"


def test_all_exports_resolve():
    """Every name in a package's __all__ must actually exist."""
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), \
                f"{package_name}.__all__ lists missing name {name!r}"


#: Experiment numbers used by infrastructure benchmarks that live in
#: `repro.bench` proper rather than the claims registry (E23 is the
#: throughput gate's hot-loop workload — see EXPERIMENTS.md).
RESERVED_EXPERIMENT_IDS = {"E23"}


def test_experiment_registry_complete():
    from repro.bench.experiments import ALL_EXPERIMENTS
    ids = list(ALL_EXPERIMENTS)
    expected = [f"E{i}" for i in
                range(1, len(ids) + len(RESERVED_EXPERIMENT_IDS) + 1)
                if f"E{i}" not in RESERVED_EXPERIMENT_IDS]
    assert ids == expected
    for fn in ALL_EXPERIMENTS.values():
        assert (fn.__doc__ or "").strip()


def test_version_exposed():
    assert repro.__version__
