"""Property tests for the CRDT semilattice laws plus unit behavior."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crdt import GCounter, LWWRegister, ORSet, PNCounter


# --------------------------------------------------------------- unit tests
def test_gcounter_increment_and_value():
    c = GCounter()
    c.increment("a")
    c.increment("b", 4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.increment("a", 0)
    with pytest.raises(ValueError):
        GCounter({"a": -1})


def test_gcounter_merge_takes_max_per_replica():
    a = GCounter({"r1": 3, "r2": 1})
    b = GCounter({"r1": 2, "r2": 5, "r3": 1})
    merged = a.merge(b)
    assert merged.value == 3 + 5 + 1


def test_pncounter_decrement():
    c = PNCounter()
    c.increment("a", 10)
    c.decrement("b", 3)
    assert c.value == 7


def test_lww_register_later_stamp_wins():
    r = LWWRegister()
    r.set("old", 1.0, "a")
    r.set("new", 2.0, "b")
    r.set("stale", 1.5, "c")  # older than current: ignored
    assert r.value == "new"


def test_lww_tie_broken_by_replica():
    a = LWWRegister()
    a.set("from-a", 1.0, "a")
    b = LWWRegister()
    b.set("from-b", 1.0, "b")
    assert a.merge(b).value == "from-b"  # "b" > "a"
    assert b.merge(a).value == "from-b"  # commutative


def test_orset_add_remove_semantics():
    s = ORSet()
    s.add("x", "r1")
    assert "x" in s
    s.remove("x")
    assert "x" not in s
    # Re-adding after removal works (fresh tag).
    s.add("x", "r1")
    assert "x" in s


def test_orset_concurrent_add_wins_over_remove():
    """The OR-set signature property: an add not yet observed by the
    remover survives the merge."""
    base = ORSet()
    base.add("x", "r1")
    # Replica A removes x (observing only r1's tag).
    a = base.copy()
    a.remove("x")
    # Replica B concurrently adds x again.
    b = base.copy()
    b.add("x", "r2")
    merged = a.merge(b)
    assert "x" in merged


# ------------------------------------------------------- semilattice laws
def gcounters():
    return st.dictionaries(st.sampled_from(["r1", "r2", "r3"]),
                           st.integers(0, 50), max_size=3).map(GCounter)


def lww_registers():
    # A (timestamp, replica) stamp uniquely identifies one write in a
    # real system, so the value is derived from the stamp: colliding
    # stamps never carry different values.
    return st.tuples(st.floats(0, 100, allow_nan=False),
                     st.sampled_from(["a", "b"])).map(
        lambda t: _make_lww(*t))


def _make_lww(ts, rep):
    r = LWWRegister()
    r.set(f"write@{ts}:{rep}", ts, rep)
    return r


def orsets():
    def build(ops):
        s = ORSet()
        for element, replica, remove in ops:
            if remove:
                s.remove(element)
            else:
                s.add(element, replica)
        return s
    return st.lists(st.tuples(st.integers(0, 5),
                              st.sampled_from(["r1", "r2"]),
                              st.booleans()), max_size=10).map(build)


@pytest.mark.parametrize("strategy", [gcounters(), lww_registers(),
                                      orsets()],
                         ids=["gcounter", "lww", "orset"])
def test_merge_idempotent(strategy):
    @given(strategy)
    def check(x):
        assert x.merge(x) == x
    check()


@pytest.mark.parametrize("strategy", [gcounters(), lww_registers(),
                                      orsets()],
                         ids=["gcounter", "lww", "orset"])
def test_merge_commutative(strategy):
    @given(strategy, strategy)
    def check(x, y):
        assert x.merge(y) == y.merge(x)
    check()


@pytest.mark.parametrize("strategy", [gcounters(), lww_registers(),
                                      orsets()],
                         ids=["gcounter", "lww", "orset"])
def test_merge_associative(strategy):
    @given(strategy, strategy, strategy)
    def check(x, y, z):
        assert x.merge(y).merge(z) == x.merge(y.merge(z))
    check()


@given(st.lists(st.tuples(st.sampled_from(["r1", "r2", "r3"]),
                          st.integers(1, 5)), min_size=1, max_size=20))
def test_gcounter_no_lost_updates_any_delivery_order(increments):
    """Property: however updates are split across replicas and merged,
    the counter converges to the exact total."""
    replicas = {"r1": GCounter(), "r2": GCounter(), "r3": GCounter()}
    total = 0
    for replica, amount in increments:
        replicas[replica].increment(replica, amount)
        total += amount
    merged = GCounter()
    for state in replicas.values():
        merged = merged.merge(state)
    assert merged.value == total
