"""Tests for the replicated CRDT service and its device-object doorway."""

import pytest

from repro.cluster import DC_2021, FailureInjector, Network, build_cluster
from repro.core import PCSICloud
from repro.crdt import ReplicatedCRDTService, UnknownCRDTError
from repro.security import AccessDeniedError, Right
from repro.sim import Simulator


def make_service(propagation=0.010):
    sim = Simulator()
    topo = build_cluster(sim, racks=3, nodes_per_rack=4,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    svc = ReplicatedCRDTService(
        sim, net, ["rack0-n0", "rack1-n0", "rack2-n0"],
        gossip_delay_mean=propagation)
    return sim, topo, net, svc


def run(sim, gen):
    return sim.run_until_event(sim.spawn(gen))


def test_counter_update_and_read():
    sim, topo, net, svc = make_service()

    def flow():
        yield from svc.handle("rack0-n3", "create",
                              {"name": "hits", "type": "gcounter"})
        value = yield from svc.handle("rack0-n3", "update",
                                      {"name": "hits",
                                       "method": "increment",
                                       "args": {"amount": 3}})
        return value

    assert run(sim, flow()) == 3


def test_concurrent_increments_all_survive():
    """The reason CRDTs exist: concurrent increments at different
    replicas merge without loss."""
    sim, topo, net, svc = make_service()
    writers = ["rack0-n1", "rack1-n1", "rack2-n1"]

    def setup():
        yield from svc.handle(writers[0], "create",
                              {"name": "c", "type": "gcounter"})

    run(sim, setup())

    def writer(node):
        for _ in range(10):
            yield from svc.handle(node, "update",
                                  {"name": "c", "method": "increment"})

    for node in writers:
        sim.spawn(writer(node))
    sim.run()
    assert svc.converged("c")
    assert svc.replica_value("rack0-n0", "c") == 30


def test_reads_are_local_and_eventually_converge():
    sim, topo, net, svc = make_service(propagation=0.100)

    def flow():
        yield from svc.handle("rack0-n1", "create",
                              {"name": "r", "type": "lww"})
        yield from svc.handle("rack0-n1", "update",
                              {"name": "r", "method": "set",
                               "args": {"value": "v1"}})
        # A reader near a different replica may see a stale view...
        early = yield from svc.handle("rack2-n1", "read", {"name": "r"})
        return early

    early = run(sim, flow())
    assert early is None  # not yet gossiped
    sim.run()  # let gossip drain
    assert svc.converged("r")
    assert svc.replica_value("rack2-n0", "r") == "v1"


def test_orset_through_service():
    sim, topo, net, svc = make_service()

    def flow():
        yield from svc.handle("rack0-n1", "create",
                              {"name": "s", "type": "orset"})
        yield from svc.handle("rack0-n1", "update",
                              {"name": "s", "method": "add",
                               "args": {"element": "a"}})
        yield from svc.handle("rack0-n1", "update",
                              {"name": "s", "method": "add",
                               "args": {"element": "b"}})
        yield from svc.handle("rack0-n1", "update",
                              {"name": "s", "method": "remove",
                               "args": {"element": "a"}})
        return (yield from svc.handle("rack0-n1", "read", {"name": "s"}))

    assert run(sim, flow()) == ["b"]


def test_unknown_ops_and_instances():
    sim, topo, net, svc = make_service()

    def bad_op():
        yield from svc.handle("rack0-n1", "destroy", {"name": "x"})

    with pytest.raises(UnknownCRDTError):
        run(sim, bad_op())

    def bad_type():
        yield from svc.handle("rack0-n1", "create",
                              {"name": "x", "type": "paxos"})

    with pytest.raises(UnknownCRDTError):
        run(sim, bad_type())

    def missing_instance():
        yield from svc.handle("rack0-n1", "read", {"name": "ghost"})

    with pytest.raises(UnknownCRDTError):
        run(sim, missing_instance())


def test_gossip_survives_partition_via_later_updates():
    sim, topo, net, svc = make_service(propagation=0.005)
    inj = FailureInjector(sim, topo, net)
    inj.partition({"rack2-n0"}, {"rack0-n0", "rack0-n1"}, at=0.0,
                  heal_at=5.0)

    def flow():
        yield from svc.handle("rack0-n1", "create",
                              {"name": "c", "type": "gcounter"})
        yield from svc.handle("rack0-n1", "update",
                              {"name": "c", "method": "increment"})
        yield sim.timeout(6.0)  # partition heals
        # A later update's gossip carries the merged state across.
        yield from svc.handle("rack0-n1", "update",
                              {"name": "c", "method": "increment"})

    run(sim, flow())
    sim.run()
    assert svc.replica_value("rack2-n0", "c") == 2


# ------------------------------------------------------ device-object access
def test_crdt_behind_device_object():
    cloud = PCSICloud(racks=3, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=13)
    svc = ReplicatedCRDTService(
        cloud.sim, cloud.network,
        ["rack0-n0", "rack1-n0", "rack2-n0"])
    cloud.register_device_service("crdt", svc)
    dev = cloud.create_device("crdt")
    client = cloud.client_node()

    def flow():
        yield from cloud.op_device(client, dev, "create",
                                   {"name": "likes", "type": "pncounter"})
        yield from cloud.op_device(client, dev, "update",
                                   {"name": "likes",
                                    "method": "increment",
                                    "args": {"amount": 5}})
        yield from cloud.op_device(client, dev, "update",
                                   {"name": "likes",
                                    "method": "decrement",
                                    "args": {"amount": 2}})
        return (yield from cloud.op_device(client, dev, "read",
                                           {"name": "likes"},
                                           right=Right.READ))

    assert cloud.run_process(flow()) == 3


def test_device_rights_enforced():
    cloud = PCSICloud(racks=2, nodes_per_rack=2, gpu_nodes_per_rack=0)
    svc = ReplicatedCRDTService(cloud.sim, cloud.network, ["rack0-n0"])
    cloud.register_device_service("crdt", svc)
    dev = cloud.create_device("crdt", rights=Right.READ)
    client = cloud.client_node()

    def flow():
        yield from cloud.op_device(client, dev, "update",
                                   {"name": "x", "method": "increment"})

    with pytest.raises(AccessDeniedError):
        cloud.run_process(flow())


def test_device_registration_validation():
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0)
    with pytest.raises(TypeError):
        cloud.register_device_service("bad", object())
    with pytest.raises(ValueError):
        cloud.create_device("unregistered")
    svc = ReplicatedCRDTService(cloud.sim, cloud.network, ["rack0-n0"])
    cloud.register_device_service("crdt", svc)
    with pytest.raises(ValueError):
        cloud.register_device_service("crdt", svc)


def test_function_body_can_use_devices():
    """Functions reach system services through device refs in args."""
    from repro.cluster import cpu_task
    from repro.core import FunctionImpl
    from repro.faas import WASM

    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=3)
    svc = ReplicatedCRDTService(cloud.sim, cloud.network,
                                ["rack0-n0", "rack1-n0"])
    cloud.register_device_service("crdt", svc)
    dev = cloud.create_device("crdt")

    def body(ctx):
        yield from ctx.device(ctx.args["counter"], "update",
                              {"name": "calls", "method": "increment"})
        value = yield from ctx.device(ctx.args["counter"], "read",
                                      {"name": "calls"},
                                      right=Right.READ)
        return {"calls": value}

    fn = cloud.define_function(
        "counting", [FunctionImpl("wasm", WASM, cpu_task())], body=body)
    client = cloud.client_node()

    def flow():
        yield from cloud.op_device(client, dev, "create",
                                   {"name": "calls", "type": "gcounter"})
        r1 = yield from cloud.invoke(client, fn, {"counter": dev})
        r2 = yield from cloud.invoke(client, fn, {"counter": dev})
        return r1, r2

    r1, r2 = cloud.run_process(flow())
    assert r1 == {"calls": 1}
    assert r2 == {"calls": 2}
