"""End-to-end scenarios crossing every subsystem at once."""

import pytest

from repro.cluster import MB, cpu_task
from repro.cluster.failures import FailureInjector
from repro.core import (
    Consistency,
    FunctionImpl,
    Mutability,
    PCSICloud,
)
from repro.crdt import ReplicatedCRDTService
from repro.faas import WASM
from repro.net import SizedPayload
from repro.security import AccessDeniedError, Right
from repro.sim import RandomStream
from repro.workloads import (
    LoadDriver,
    ModelServingApp,
    ModelServingConfig,
    constant_rate,
)

SMALL_CFG = ModelServingConfig(upload_nbytes=128 * 1024,
                               weights_nbytes=4 * MB)


def test_pipeline_under_load_with_weight_rollouts():
    """Serve concurrent traffic while weights roll over twice; every
    response must be produced with a version that was current at some
    point during its request (no torn reads of the pointer)."""
    cloud = PCSICloud(racks=4, nodes_per_rack=8, gpu_nodes_per_rack=2,
                      seed=77, keep_alive=600.0)
    app = ModelServingApp(cloud, SMALL_CFG)
    client = cloud.client_node()
    versions_seen = []

    driver = LoadDriver(cloud.sim, RandomStream(77, "e2e"),
                        constant_rate(20.0), horizon=6.0)

    def handler(i):
        _latency, result = yield from app.serve_one(client)
        versions_seen.append(result.results["infer"]["weights"])

    def roller():
        yield cloud.sim.timeout(2.0)
        yield from app.update_weights(client)
        yield cloud.sim.timeout(2.0)
        yield from app.update_weights(client)

    driver.start(handler)
    cloud.sim.spawn(roller())
    cloud.run()
    assert driver.completed > 50
    assert driver.failed == 0
    # Requests queued behind the initial GPU cold start may already see
    # v2; every later rollout must be observed.
    assert {"v2", "v3"} <= set(versions_seen) <= {"v1", "v2", "v3"}
    # The pointer is linearizable and rollouts are spaced far apart, so
    # versions never skip: once v3 is the only thing being served, no
    # completion regresses below v2.
    first_v3 = versions_seen.index("v3")
    assert "v1" not in versions_seen[first_v3:]


def test_multi_tenant_isolation():
    """Two tenants share the cluster; capability discipline keeps each
    inside its own namespace even though functions physically share
    machines and the data layer."""
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=78)
    client = cloud.client_node()

    alice_root = cloud.create_root("alice")
    alice_secret = cloud.create_object()
    cloud.preload(alice_secret, SizedPayload(1024, meta="alice-data"))
    cloud.link(alice_root, "secret", alice_secret,
               rights=Right.READ | Right.RESOLVE)

    bob_root = cloud.create_root("bob")

    # Bob's function receives *only* Bob's root.
    def bob_body(ctx):
        yield ctx._kernel.sim.timeout(0)
        try:
            yield from ctx.resolve(ctx.args["root"], "secret")
            return {"leak": True}
        except Exception:
            return {"leak": False}

    bob_fn = cloud.define_function(
        "bob-probe", [FunctionImpl("wasm", WASM, cpu_task())],
        body=bob_body)

    def flow():
        result = yield from cloud.invoke(client, bob_fn,
                                         {"root": bob_root})
        return result

    assert cloud.run_process(flow()) == {"leak": False}

    # Even holding the object id is useless without a capability: a
    # read through an attenuated reference fails on rights.
    readonly = cloud.refs.mint(alice_secret.object_id, Right.READ)
    narrowed = readonly  # READ only: writes must fail

    def write_attempt():
        yield from cloud.op_write(client, narrowed, SizedPayload(1))

    with pytest.raises(AccessDeniedError):
        cloud.run_process(write_attempt())


def test_everything_together_with_failures():
    """Functions + quorum storage + CRDT metrics + GC, while a data
    replica crashes and recovers."""
    cloud = PCSICloud(racks=3, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=79, keep_alive=600.0)
    crdt = ReplicatedCRDTService(
        cloud.sim, cloud.network,
        ["rack0-n1", "rack1-n1", "rack2-n1"])
    cloud.register_device_service("crdt", crdt)
    metrics_dev = cloud.create_device("crdt")
    client = cloud.client_node()

    root = cloud.create_root("app")
    store_obj = cloud.create_object(consistency=Consistency.LINEARIZABLE)
    cloud.link(root, "state", store_obj)

    def body(ctx):
        payload = yield from ctx.read(ctx.args["state"])
        yield from ctx.compute(5e8)
        yield from ctx.write(ctx.args["state"],
                             SizedPayload(payload.nbytes + 64))
        yield from ctx.device(ctx.args["metrics"], "update",
                              {"name": "ops", "method": "increment"})
        return {"size": payload.nbytes}

    fn = cloud.define_function(
        "worker", [FunctionImpl("wasm", WASM, cpu_task())], body=body)
    bin_dir = cloud.mkdir()
    cloud.link(root, "bin", bin_dir)
    cloud.link(bin_dir, "worker", fn)

    # Crash one data replica mid-run; the quorum holds.
    victim = cloud.data.store.replica_nodes[0]
    inj = FailureInjector(cloud.sim, cloud.topology, cloud.network)
    inj.crash_node(victim, at=0.5, recover_at=2.0)

    def flow():
        yield from cloud.op_write(client, store_obj, SizedPayload(64))
        yield from crdt.handle(client, "create",
                               {"name": "ops", "type": "gcounter"})
        for _ in range(8):
            yield from cloud.invoke(client, fn,
                                    {"state": store_obj,
                                     "metrics": metrics_dev},
                                    max_attempts=10)
            yield cloud.sim.timeout(0.3)
        # Drop a garbage object and collect.
        doomed = cloud.create_object()
        yield from cloud.op_write(client, doomed, SizedPayload(4096))
        stats = yield from cloud.collect_garbage()
        return stats

    stats = cloud.run_process(flow())
    cloud.run()  # drain gossip
    assert crdt.converged("ops")
    assert crdt.replica_value("rack0-n1", "ops") == 8
    final = cloud.table.get(store_obj.object_id)
    assert final.size == 64 + 8 * 64
    assert stats.collected >= 1
    # Live application state survived the GC.
    assert store_obj.object_id in cloud.table
    assert fn.object_id in cloud.table


def test_cache_invalidation_on_write_after_immutable_era():
    """A MUTABLE object is never served stale after writes, even from a
    node that cached it while the object was APPEND_ONLY-readable."""
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=80)
    client = cloud.client_node()
    log = cloud.create_object(mutability=Mutability.APPEND_ONLY,
                              consistency=Consistency.LINEARIZABLE)

    def flow():
        yield from cloud.op_write(client, log, SizedPayload(100),
                                  append=True)
        first = yield from cloud.op_read(client, log)   # caches
        yield from cloud.op_write(client, log, SizedPayload(50),
                                  append=True)          # invalidates
        second = yield from cloud.op_read(client, log)
        return first, second

    first, second = cloud.run_process(flow())
    assert first.nbytes == 100
    assert second.nbytes == 150  # not the stale cached 100


def test_deterministic_replay():
    """Same seed, same everything: the whole stack is reproducible."""
    def run_once():
        cloud = PCSICloud(racks=3, nodes_per_rack=4,
                          gpu_nodes_per_rack=1, seed=81,
                          keep_alive=600.0)
        app = ModelServingApp(cloud, SMALL_CFG)
        client = cloud.client_node()

        def flow():
            latencies = []
            for _ in range(4):
                latency, _ = yield from app.serve_one(client)
                latencies.append(latency)
            return latencies

        latencies = cloud.run_process(flow())
        return latencies, cloud.meter.total_usd, cloud.sim.now

    assert run_once() == run_once()
