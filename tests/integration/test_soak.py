"""Soak test: a long mixed-operation run must leak nothing.

Drives a thousand mixed operations (invocations, storage ops, FIFO
traffic, graph submissions, GC cycles) through one cloud and then
checks conservation invariants: no pinned objects left behind, all
executor resources returned after the pools drain, data-layer byte
accounting consistent, and the run deterministic.
"""

import pytest

from repro.cluster import cpu_task
from repro.core import (
    Consistency,
    FunctionImpl,
    Intermediate,
    Mutability,
    PCSICloud,
    TaskGraph,
)
from repro.faas import WASM
from repro.net import SizedPayload
from repro.sim import RandomStream


def run_soak(seed: int):
    cloud = PCSICloud(racks=3, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=seed, keep_alive=5.0)
    rng = RandomStream(seed, "soak")
    client = cloud.client_node()
    root = cloud.create_root("soak")

    fn = cloud.define_function(
        "op", [FunctionImpl("wasm", WASM, cpu_task(cpus=1, memory_gb=0.5),
                            work_ops=1e7)],
        reads=[], writes=[], output_nbytes=0)
    bin_dir = cloud.mkdir()
    cloud.link(root, "bin", bin_dir)
    cloud.link(bin_dir, "op", fn)

    producer = cloud.define_function(
        "produce", [FunctionImpl("wasm", WASM, cpu_task(memory_gb=0.5),
                                 work_ops=1e7)],
        writes=["out"], output_nbytes=2048)
    consumer = cloud.define_function(
        "consume", [FunctionImpl("wasm", WASM, cpu_task(memory_gb=0.5),
                                 work_ops=1e7)],
        reads=["in"], output_nbytes=0)
    cloud.link(bin_dir, "produce", producer)
    cloud.link(bin_dir, "consume", consumer)

    fifo = cloud.create_fifo(host_node="rack0-n0", capacity=16)
    cloud.link(root, "queue", fifo)
    stats = {"invokes": 0, "writes": 0, "graphs": 0, "gcs": 0,
             "fifo": 0}

    def driver():
        hot = cloud.create_object(consistency=Consistency.EVENTUAL)
        cloud.link(root, "hot", hot)
        yield from cloud.op_write(client, hot, SizedPayload(512))
        for i in range(1000):
            roll = rng.uniform()
            if roll < 0.35:
                yield from cloud.invoke(client, fn)
                stats["invokes"] += 1
            elif roll < 0.6:
                yield from cloud.op_write(client, hot,
                                          SizedPayload(512 + i % 7))
                yield from cloud.op_read(client, hot)
                stats["writes"] += 1
            elif roll < 0.75:
                yield from cloud.op_fifo_put(client, fifo,
                                             SizedPayload(64))
                yield from cloud.op_fifo_get(client, fifo)
                stats["fifo"] += 1
            elif roll < 0.9:
                graph = TaskGraph(f"g{i}")
                mid = Intermediate("mid", nbytes_hint=2048)
                graph.add_stage("p", producer, args={"out": mid})
                graph.add_stage("c", consumer, args={"in": mid})
                graph.link("p", "c")
                yield from cloud.submit_graph(client, graph)
                stats["graphs"] += 1
            else:
                # Make some garbage, then collect it.
                doomed = cloud.create_object(
                    consistency=Consistency.EVENTUAL)
                yield from cloud.op_write(client, doomed,
                                          SizedPayload(1024))
                yield from cloud.collect_garbage()
                stats["gcs"] += 1

    cloud.run_process(driver())
    cloud.run()  # drain keep-alive reapers, gossip, propagation
    return cloud, stats


@pytest.mark.parametrize("seed", [5])
def test_soak_conserves_resources(seed):
    cloud, stats = run_soak(seed)
    assert sum(stats.values()) == 1000
    # Nothing pinned once every invocation has finished.
    assert cloud.refs.pinned == set()
    # Every sandbox was reaped (keep_alive=5s, run drained), and every
    # allocated resource was returned to its node.
    assert all(pool.size == 0
               for pool in cloud.scheduler._pools.values())
    for node in cloud.topology.nodes:
        assert node.allocated.is_zero(), node
    # The histories agree with the counters.
    invocations = len(cloud.scheduler.history)
    assert invocations == (stats["invokes"] + 2 * stats["graphs"])
    # Data-layer accounting is internally consistent.
    total = sum(store.bytes_stored
                for store in cloud.data.store.replicas.values())
    per_record = sum(
        record.nbytes
        for store in cloud.data.store.replicas.values()
        for record in store._records.values())
    assert total == per_record


def test_soak_deterministic():
    cloud_a, stats_a = run_soak(9)
    cloud_b, stats_b = run_soak(9)
    assert stats_a == stats_b
    assert cloud_a.sim.now == cloud_b.sim.now
    assert cloud_a.meter.total_usd == cloud_b.meter.total_usd
    assert (cloud_a.metrics.counters()
            == cloud_b.metrics.counters())
