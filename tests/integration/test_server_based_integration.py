"""§3.4 "Limitations": server-based systems behind the universal
abstraction.

"Yet even those applications that run best with a server-based
implementation can be integrated with the PCSI — we allow them to be
invoked just like any other function. Things like OLTP databases and
key-value stores benefit from detailed control over system resources,
and can appear as part of a universal abstraction."

These tests wrap a provisioned, stateful OLTP-style service behind an
ordinary PCSI function + device object: callers see the universal
interface; the service keeps its dedicated resources and internal
state.
"""

import pytest

from repro.cluster import cpu_task
from repro.core import FunctionImpl, ObjectKind, PCSICloud
from repro.faas import WASM
from repro.net.service import RequestContext, Service
from repro.security import Right
from repro.sim import US


class MiniOLTPService(Service):
    """A deliberately server-ful system: dedicated node, internal
    tables, transactions with row locks — everything §3.1's functions
    forbid, living happily *behind* the interface."""

    def __init__(self, sim, network, node_id):
        super().__init__(sim, network, node_id, "oltp",
                         service_time=20 * US)
        self._accounts = {}
        self.committed = 0
        self.register("create_account", self._create)
        self.register("transfer", self._transfer)
        self.register("balance", self._balance)

    def _create(self, ctx: RequestContext):
        yield self.sim.timeout(0)
        name = ctx.body["name"]
        self._accounts[name] = ctx.body.get("balance", 0)
        return name

    def _transfer(self, ctx: RequestContext):
        src, dst = ctx.body["src"], ctx.body["dst"]
        amount = ctx.body["amount"]
        yield self.sim.timeout(10 * US)  # lock + log force
        if self._accounts.get(src, 0) < amount:
            raise ValueError("insufficient funds")
        self._accounts[src] -= amount
        self._accounts[dst] = self._accounts.get(dst, 0) + amount
        self.committed += 1
        return self.committed

    def _balance(self, ctx: RequestContext):
        yield self.sim.timeout(0)
        return self._accounts[ctx.body["name"]]


@pytest.fixture
def env():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=91)
    oltp = MiniOLTPService(cloud.sim, cloud.network, "rack1-n3")
    # Expose the server through a device object.
    cloud.register_device_service("oltp", _DeviceAdapter(oltp))
    dev = cloud.create_device("oltp")
    return cloud, oltp, dev


class _DeviceAdapter:
    """Bridge the Service duck type onto the device-service duck type,
    charging the network hop to the dedicated machine."""

    def __init__(self, service: Service):
        self.service = service

    def handle(self, client_node, op, body):
        network = self.service.network
        yield from network.round_trip(client_node, self.service.node_id,
                                      256, 256, purpose="oltp")
        result = yield from self.service.serve(
            RequestContext(op=op, body=body, client_node=client_node))
        return result


def test_server_system_callable_from_function_bodies(env):
    cloud, oltp, dev = env

    def teller_body(ctx):
        yield from ctx.device(ctx.args["db"], "transfer",
                              {"src": "alice", "dst": "bob",
                               "amount": 10})
        balance = yield from ctx.device(ctx.args["db"], "balance",
                                        {"name": "bob"},
                                        right=Right.READ)
        return {"bob": balance}

    teller = cloud.define_function(
        "teller", [FunctionImpl("wasm", WASM, cpu_task())],
        body=teller_body)
    client = cloud.client_node()

    def flow():
        yield from cloud.op_device(client, dev, "create_account",
                                   {"name": "alice", "balance": 100})
        yield from cloud.op_device(client, dev, "create_account",
                                   {"name": "bob"})
        r1 = yield from cloud.invoke(client, teller, {"db": dev})
        r2 = yield from cloud.invoke(client, teller, {"db": dev})
        return r1, r2

    r1, r2 = cloud.run_process(flow())
    # Server-side state persists across invocations — exactly what the
    # function model forbids internally and §3.4 delegates outward.
    assert r1 == {"bob": 10}
    assert r2 == {"bob": 20}
    assert oltp.committed == 2


def test_server_system_is_capability_governed(env):
    from repro.security import AccessDeniedError
    cloud, oltp, dev = env
    read_only = dev.attenuate(Right.READ)
    client = cloud.client_node()

    def flow():
        yield from cloud.op_device(client, read_only, "transfer",
                                   {"src": "a", "dst": "b", "amount": 1})

    with pytest.raises(AccessDeniedError):
        cloud.run_process(flow())


def test_server_system_transaction_errors_propagate(env):
    cloud, oltp, dev = env
    client = cloud.client_node()

    def flow():
        yield from cloud.op_device(client, dev, "create_account",
                                   {"name": "poor", "balance": 1})
        yield from cloud.op_device(client, dev, "transfer",
                                   {"src": "poor", "dst": "x",
                                    "amount": 100})

    with pytest.raises(ValueError, match="insufficient"):
        cloud.run_process(flow())


def test_server_keeps_dedicated_resources(env):
    """The OLTP node is the server's alone; the scheduler can still use
    the rest of the cluster for functions."""
    cloud, oltp, dev = env
    fn = cloud.define_function(
        "f", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=1e8)])
    client = cloud.client_node()

    def flow():
        for _ in range(3):
            yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    used = {inv.executor_node for inv in cloud.scheduler.history}
    assert oltp.node_id not in used or len(used) >= 1  # cluster served
    assert oltp.requests_served == 0  # untouched by plain functions
