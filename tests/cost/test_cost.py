"""Tests for the price book and cost meters."""

import pytest

from repro.cost import DEFAULT_PRICES, CostMeter, PriceBook, ProvisionedFleet
from repro.sim import HOUR, Simulator


def test_paper_kv_read_price():
    """The book encodes the paper's measured 0.18 USD/M KV fetch."""
    assert DEFAULT_PRICES.kv_read(1_000_000) == pytest.approx(0.18)


def test_price_book_conversions():
    p = PriceBook()
    assert p.invocations(2_000_000) == pytest.approx(0.40)
    assert p.compute(duration_s=1.0, memory_gb=1.0) == pytest.approx(
        1.6667e-5)
    assert p.provisioned(duration_s=3600.0) == pytest.approx(0.10)
    assert p.provisioned(duration_s=3600.0, gpu=True) == pytest.approx(3.0)
    assert p.egress(1024 ** 3) == pytest.approx(0.09)


def test_price_book_validation():
    p = PriceBook()
    with pytest.raises(ValueError):
        p.compute(-1.0, 1.0)
    with pytest.raises(ValueError):
        p.provisioned(-1.0)
    with pytest.raises(ValueError):
        p.egress(-1)


def test_meter_accumulates_by_category():
    m = CostMeter()
    m.kv_read(10)
    m.kv_read(5)
    m.object_put(2)
    assert m.usd("kv.read") == pytest.approx(DEFAULT_PRICES.kv_read(15))
    assert m.units("kv.read") == 15
    assert m.total_usd == pytest.approx(
        DEFAULT_PRICES.kv_read(15) + DEFAULT_PRICES.object_put(2))


def test_meter_per_million_matches_paper_unit():
    m = CostMeter()
    m.kv_read(1000)
    assert m.per_million("kv.read") == pytest.approx(0.18)


def test_meter_invocation_includes_gpu():
    m = CostMeter()
    m.invocation(duration_s=2.0, memory_gb=4.0, gpus=1)
    assert m.usd("compute.requests") > 0
    assert m.usd("compute.duration") == pytest.approx(
        DEFAULT_PRICES.compute(2.0, 4.0))
    assert m.usd("compute.gpu") == pytest.approx(
        DEFAULT_PRICES.gpu_time(2.0, 1))


def test_meter_rejects_negative():
    m = CostMeter()
    with pytest.raises(ValueError):
        m.add("x", -1.0)


def test_meter_breakdown_sorted():
    m = CostMeter()
    m.add("zeta", 1.0)
    m.add("alpha", 2.0)
    assert list(m.breakdown()) == ["alpha", "zeta"]


def test_provisioned_fleet_integrates_over_time():
    sim = Simulator()
    meter = CostMeter()
    fleet = ProvisionedFleet(sim, meter, "web", servers=2.0)

    def run(sim):
        yield sim.timeout(1 * HOUR)
        fleet.scale_to(4.0)
        yield sim.timeout(0.5 * HOUR)
        fleet.settle()

    sim.spawn(run(sim))
    sim.run()
    # 2 servers x 1h + 4 servers x 0.5h = 4 server-hours @ 0.10
    assert meter.usd("provisioned.servers") == pytest.approx(0.40)


def test_provisioned_fleet_settle_idempotent():
    sim = Simulator()
    meter = CostMeter()
    fleet = ProvisionedFleet(sim, meter, "web", servers=1.0)

    def run(sim):
        yield sim.timeout(1 * HOUR)
        fleet.settle()
        fleet.settle()

    sim.spawn(run(sim))
    sim.run()
    assert meter.usd("provisioned.servers") == pytest.approx(0.10)


def test_fleet_rejects_negative_scale():
    sim = Simulator()
    fleet = ProvisionedFleet(sim, CostMeter(), "web")
    with pytest.raises(ValueError):
        fleet.scale_to(-1)


def test_idle_provisioned_fleet_still_costs():
    """E13's core point: provisioned capacity bills while idle."""
    sim = Simulator()
    meter = CostMeter()
    fleet = ProvisionedFleet(sim, meter, "idle", servers=10.0)

    def run(sim):
        yield sim.timeout(24 * HOUR)  # no requests at all
        fleet.settle()

    sim.spawn(run(sim))
    sim.run()
    assert meter.usd("provisioned.servers") == pytest.approx(24.0)
