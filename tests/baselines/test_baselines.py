"""Tests for the baseline systems."""

import pytest

from repro.baselines import (
    MonolithicServer,
    PipelineStageSpec,
    ProvisionedDeployment,
    SiloedFaaS,
    SSIFileSystem,
    WebServiceChain,
)
from repro.cluster import (
    DC_2021,
    FailureInjector,
    Network,
    build_cluster,
    cpu_task,
)
from repro.cost import CostMeter
from repro.faas import CONTAINER
from repro.net import SizedPayload
from repro.sim import HOUR, MS, Simulator
from repro.storage import ManagedKVService


def make_env(racks=2, nodes_per_rack=4):
    sim = Simulator()
    topo = build_cluster(sim, racks=racks, nodes_per_rack=nodes_per_rack,
                         gpu_nodes_per_rack=1)
    net = Network(sim, topo, DC_2021)
    return sim, topo, net


def run(sim, gen):
    return sim.run_until_event(sim.spawn(gen))


# ----------------------------------------------------------------- monolith
def test_monolith_pipeline_latency_composition():
    sim, topo, net = make_env()
    stages = [PipelineStageSpec("a", "cpu", 5e8, 1024),
              PipelineStageSpec("b", "gpu", 5e10, 1024)]
    srv = MonolithicServer(sim, net, "rack0-n0", stages)

    def flow():
        latency, nbytes = yield from srv.handle("rack1-n0", 2048)
        return latency, nbytes

    latency, nbytes = run(sim, flow())
    assert nbytes == 1024
    # cpu: 5e8/5e10 = 10ms; gpu: 5e10/1e12 = 50ms; plus transfers.
    assert latency > 60 * MS
    assert latency < 70 * MS


def test_monolith_requires_devices():
    sim, topo, net = make_env()
    with pytest.raises(ValueError):
        MonolithicServer(sim, net, "rack0-n1",  # CPU-only node
                         [PipelineStageSpec("gpu-stage", "gpu", 1e9, 10)])


def test_monolith_stage_validation():
    with pytest.raises(ValueError):
        PipelineStageSpec("bad", "cpu", -1, 0)


def test_monolith_bills_around_the_clock():
    sim, topo, net = make_env()
    meter = CostMeter()
    srv = MonolithicServer(sim, net, "rack0-n0",
                           [PipelineStageSpec("a", "cpu", 1e8, 10)],
                           meter=meter)

    def flow():
        yield sim.timeout(2 * HOUR)  # zero requests
        srv.settle_costs()

    run(sim, flow())
    assert meter.usd("provisioned.gpu") == pytest.approx(6.0)  # 2h @ $3


def test_monolith_concurrency_queues():
    sim, topo, net = make_env()
    srv = MonolithicServer(sim, net, "rack0-n0",
                           [PipelineStageSpec("a", "cpu", 5e9, 10)],
                           concurrency=1)
    done = []

    def client(tag):
        latency, _ = yield from srv.handle("rack1-n0", 100)
        done.append((tag, latency))

    sim.spawn(client("a"))
    sim.spawn(client("b"))
    sim.run()
    assert done[1][1] > done[0][1]  # second request queued


# ---------------------------------------------------------------------- SSI
def test_ssi_reads_hide_location():
    sim, topo, net = make_env()
    fs = SSIFileSystem(sim, net)
    fs.place_file("/data/a", "rack0-n1", 4096)

    def flow():
        nbytes = yield from fs.read("rack1-n0", "/data/a")
        return nbytes

    assert run(sim, flow()) == 4096


def test_ssi_missing_file():
    from repro.storage import KeyNotFoundError
    sim, topo, net = make_env()
    fs = SSIFileSystem(sim, net)

    def flow():
        yield from fs.read("rack1-n0", "/ghost")

    with pytest.raises(KeyNotFoundError):
        run(sim, flow())


def test_ssi_client_hangs_on_partition_then_resumes():
    """The §2.2 pathology: the POSIX client blocks with no error while
    the backing node is unreachable, and silently resumes on heal."""
    sim, topo, net = make_env()
    fs = SSIFileSystem(sim, net)
    fs.place_file("/data/a", "rack0-n1", 1024)
    inj = FailureInjector(sim, topo, net)
    inj.partition({"rack0-n1"}, {"rack1-n0"}, at=0.0, heal_at=45.0)
    completions = []

    def client():
        yield from fs.read("rack1-n0", "/data/a")
        completions.append(sim.now)

    sim.spawn(client())
    sim.run(until=44.0)
    assert completions == []  # still hung, no exception surfaced
    sim.run()
    assert len(completions) == 1 and completions[0] >= 45.0


def test_ssi_write_roundtrip():
    sim, topo, net = make_env()
    fs = SSIFileSystem(sim, net)
    fs.place_file("/f", "rack0-n1", 100)

    def flow():
        yield from fs.write("rack1-n0", "/f", 5000)
        return (yield from fs.read("rack1-n0", "/f"))

    assert run(sim, flow()) == 5000


# ----------------------------------------------------------------------- k8s
def test_deployment_reserves_capacity_upfront():
    sim, topo, net = make_env()
    dep = ProvisionedDeployment(sim, net, ["rack0-n1", "rack0-n2"],
                                service_time=10 * MS,
                                resources=cpu_task(cpus=8, memory_gb=8))
    assert topo.node("rack0-n1").allocated.cpus == 8
    assert topo.node("rack0-n2").allocated.cpus == 8


def test_deployment_round_robin_and_latency():
    sim, topo, net = make_env()
    dep = ProvisionedDeployment(sim, net, ["rack0-n1", "rack0-n2"],
                                service_time=10 * MS,
                                resources=cpu_task())

    def flow():
        lat = []
        for _ in range(4):
            lat.append((yield from dep.handle("rack1-n0")))
        return lat

    lats = run(sim, flow())
    assert all(10 * MS < latency < 15 * MS for latency in lats)
    assert dep.replicas[0].served == 2
    assert dep.replicas[1].served == 2


def test_deployment_queues_when_saturated():
    sim, topo, net = make_env()
    dep = ProvisionedDeployment(sim, net, ["rack0-n1"],
                                service_time=100 * MS,
                                resources=cpu_task(),
                                concurrency_per_replica=1)
    lats = []

    def client():
        lats.append((yield from dep.handle("rack1-n0")))

    for _ in range(3):
        sim.spawn(client())
    sim.run()
    assert lats[2] > 2 * lats[0] * 0.9  # head-of-line queueing


def test_deployment_idle_cost_accrues():
    sim, topo, net = make_env()
    meter = CostMeter()
    dep = ProvisionedDeployment(sim, net, ["rack0-n1", "rack0-n2"],
                                service_time=10 * MS,
                                resources=cpu_task(), meter=meter)

    def flow():
        yield sim.timeout(1 * HOUR)
        dep.settle_costs()

    run(sim, flow())
    assert meter.usd("provisioned.servers") == pytest.approx(0.20)


def test_deployment_validation():
    sim, topo, net = make_env()
    with pytest.raises(ValueError):
        ProvisionedDeployment(sim, net, [], service_time=1.0,
                              resources=cpu_task())
    with pytest.raises(ValueError):
        ProvisionedDeployment(sim, net, ["rack0-n1"], service_time=0,
                              resources=cpu_task())
    dep = ProvisionedDeployment(sim, net, ["rack0-n1"], service_time=1.0,
                                resources=cpu_task())
    with pytest.raises(ValueError):
        dep.utilization_proxy(0)


# ------------------------------------------------------------------ REST chain
def test_webservice_chain_latency_grows_with_hops():
    sim, topo, net = make_env()
    one = WebServiceChain(sim, net, ["rack0-n1"], service_time=1 * MS)
    three = WebServiceChain(sim, net,
                            ["rack0-n2", "rack0-n3", "rack1-n1"],
                            service_time=1 * MS)

    def flow():
        l1 = yield from one.handle("rack1-n0")
        l3 = yield from three.handle("rack1-n0")
        return l1, l3

    l1, l3 = run(sim, flow())
    assert l3 > 2.5 * l1


def test_webservice_chain_authenticates_every_hop():
    sim, topo, net = make_env()
    chain = WebServiceChain(sim, net, ["rack0-n1", "rack0-n2"],
                            service_time=1 * MS)

    def flow():
        yield from chain.handle("rack1-n0")
        yield from chain.handle("rack1-n0")

    run(sim, flow())
    assert chain.auth_checks() == 4  # 2 hops x 2 requests


def test_webservice_chain_validation():
    sim, topo, net = make_env()
    with pytest.raises(ValueError):
        WebServiceChain(sim, net, [], service_time=1 * MS)


# ---------------------------------------------------------------- siloed FaaS
def make_kv(sim, net, meter=None):
    return ManagedKVService(sim, net, router_node="rack0-n1",
                            metadata_node="rack0-n2",
                            replica_nodes=["rack0-n3", "rack1-n1",
                                           "rack1-n2"],
                            meter=meter)


def test_siloed_faas_invocation_roundtrip():
    sim, topo, net = make_env()
    kv = make_kv(sim, net)
    rest_seed = CostMeter()
    silo = SiloedFaaS(sim, net, "thumbnail", CONTAINER, cpu_task(),
                      kv=kv, work_ops=1e9, meter=rest_seed)

    def seed():
        from repro.net import RestTransport
        rest = RestTransport(net)
        yield from rest.call("rack1-n0", kv, "put",
                             {"key": "img", "payload": SizedPayload(2048)})

    run(sim, seed())

    def flow():
        latency = yield from silo.invoke("rack1-n0", read_keys=["img"],
                                         write_keys=["thumb"])
        return latency

    latency = run(sim, flow())
    assert latency > CONTAINER.cold_start  # cold start on first call
    assert silo.invocations == 1
    assert kv.requests_served >= 3  # seed put + get + put


def test_siloed_faas_every_state_op_pays_rest():
    sim, topo, net = make_env()
    meter = CostMeter()
    kv = make_kv(sim, net, meter)
    silo = SiloedFaaS(sim, net, "fn", CONTAINER, cpu_task(), kv=kv,
                      work_ops=0)

    def flow():
        yield from silo.invoke("rack1-n0", read_keys=[],
                               write_keys=["a", "b", "c"])

    run(sim, flow())
    assert meter.units("kv.write") == 3
    assert net.metrics.counter("rest.calls").value == 3
