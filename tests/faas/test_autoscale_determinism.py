"""Bit-identical replay: same seed + same policy => same everything.

The controller inserts its own events into the simulation, so the
guarantee worth pinning is that a *controlled* run is still a pure
function of (seed, schedule, policy): the full labeled-metrics export
— every counter, gauge trajectory, and sampled series point — must
serialize to byte-identical JSON across replays.
"""

import pytest

from repro.faas import ControllerHarness, QueueDepthPolicy, burst_phases

BURSTS = burst_phases(bursts=2, burst_duration=5.0, burst_rate=8.0,
                      gap=30.0)


@pytest.mark.parametrize("policy", ["fixed", "queue-depth", "hit-rate"])
def test_same_seed_same_policy_replays_byte_identical(policy):
    a = ControllerHarness(policy=policy, seed=59).run(BURSTS)
    b = ControllerHarness(policy=policy, seed=59).run(BURSTS)
    assert a.metrics_text == b.metrics_text
    assert a.behavior_signature() == b.behavior_signature()
    assert a.duration == b.duration
    assert a.ticks == b.ticks


def test_controller_history_replays_identically():
    a = ControllerHarness(policy="queue-depth", seed=59).run(BURSTS)
    b = ControllerHarness(policy="queue-depth", seed=59).run(BURSTS)
    assert len(a.controller.history) == len(b.controller.history)
    for ra, rb in zip(a.controller.history, b.controller.history):
        assert ra == rb  # frozen dataclasses: field-exact


def test_different_seed_differs_with_jitter():
    phases = [p.__class__(p.duration, p.rate, jitter=p.rate > 0)
              for p in BURSTS]
    a = ControllerHarness(policy="queue-depth", seed=59).run(phases)
    b = ControllerHarness(policy="queue-depth", seed=60).run(phases)
    assert a.metrics_text != b.metrics_text


def test_policy_prototype_runs_match_registry_name_runs():
    """A configured prototype with default parameters is the same
    policy as the registry name — replay proves it."""
    by_name = ControllerHarness(policy="queue-depth", seed=59).run(BURSTS)
    by_proto = ControllerHarness(policy=QueueDepthPolicy(),
                                 seed=59).run(BURSTS)
    assert by_name.metrics_text == by_proto.metrics_text
