"""Property tests for WarmPool under random schedules.

Random (arrival-gap, hold-time) schedules — Hypothesis-drawn, replayed
through ``repro.sim.rng``-style determinism — drive acquire/release
traffic through a pool and check the accounting invariants that the
autoscale controller now depends on:

* **no double-grant**: an executor is never handed to two invocations
  at once;
* **FIFO waiter drain**: with ``max_executors=1`` the grant order is
  the arrival order;
* **conservation**: ``cold_starts + warm_hits`` equals completed
  acquires (queued grants are warm hits);
* **gauge honesty**: the live-size gauge always equals
  ``len(executors) + provisioning`` and never drifts from ``size``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster, cpu_task
from repro.faas import MICROVM, WarmPool
from repro.sim import Simulator


def first_fit_placer(topo):
    def place(resources, platform, preferred_node=None):
        candidates = topo.live_nodes()
        if preferred_node is not None:
            candidates = ([n for n in candidates
                           if n.node_id == preferred_node]
                          + [n for n in candidates
                             if n.node_id != preferred_node])
        for node in candidates:
            if node.has_device(platform.device_kind) \
                    and node.can_fit(resources):
                return node
        return None
    return place


def make_pool(keep_alive=5.0, max_executors=None, nodes=4):
    sim = Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=nodes,
                         gpu_nodes_per_rack=0)
    pool = WarmPool(sim, "fn/impl", MICROVM,
                    cpu_task(cpus=1, memory_gb=1),
                    placer=first_fit_placer(topo),
                    keep_alive=keep_alive,
                    max_executors=max_executors)
    return sim, pool


#: One request: wait ``gap`` seconds after the previous arrival, hold
#: the executor ``hold`` seconds. Granularity of 10 ms keeps schedules
#: readable in failure reports.
SCHEDULES = st.lists(
    st.tuples(st.integers(0, 300), st.integers(1, 150)),
    min_size=1, max_size=12,
).map(lambda raw: [(gap / 100.0, hold / 100.0) for gap, hold in raw])


def run_schedule(schedule, keep_alive=5.0, max_executors=None):
    """Drive the schedule; returns (pool, grant_log, violations)."""
    sim, pool = make_pool(keep_alive=keep_alive,
                          max_executors=max_executors)
    granted_now = set()
    violations = []
    grant_order = []

    def check_gauge(where):
        expected = len(pool._executors) + pool._provisioning
        if pool._live_gauge.level != expected:
            violations.append(
                f"{where}: gauge {pool._live_gauge.level} != "
                f"executors+provisioning {expected}")
        if pool.size > len(pool._executors):
            violations.append(f"{where}: size above roster")

    def request(i, hold):
        def flow():
            executor = yield from pool.acquire()
            if id(executor) in granted_now:
                violations.append(f"req {i}: double-granted executor")
            if not executor.busy:
                violations.append(f"req {i}: granted executor not busy")
            granted_now.add(id(executor))
            grant_order.append(i)
            check_gauge(f"req {i} after acquire")
            yield sim.timeout(hold)
            granted_now.discard(id(executor))
            pool.release(executor)
            check_gauge(f"req {i} after release")
        return flow()

    def arrivals():
        for i, (gap, hold) in enumerate(schedule):
            if gap:
                yield sim.timeout(gap)
            sim.spawn(request(i, hold), name=f"req-{i}")

    sim.spawn(arrivals(), name="arrivals")
    sim.run()
    check_gauge("end of run")
    return pool, grant_order, violations


@settings(max_examples=30, deadline=None)
@given(schedule=SCHEDULES)
def test_no_double_grant_and_gauge_matches(schedule):
    pool, grants, violations = run_schedule(schedule)
    assert violations == []
    assert len(grants) == len(schedule)


@settings(max_examples=30, deadline=None)
@given(schedule=SCHEDULES)
def test_cold_plus_warm_equals_completed_acquires(schedule):
    pool, grants, violations = run_schedule(schedule)
    assert violations == []
    assert pool.cold_starts + pool.warm_hits == len(schedule)
    # Everything was eventually reaped: scale-to-zero invariant.
    assert pool.size == 0
    assert pool.provisioning == 0


@settings(max_examples=30, deadline=None)
@given(schedule=SCHEDULES)
def test_single_executor_pool_drains_waiters_fifo(schedule):
    """With a one-executor cap, requests queue; grants must come back
    in arrival order (the waiter list is FIFO)."""
    pool, grants, violations = run_schedule(schedule, max_executors=1)
    assert violations == []
    assert grants == sorted(grants)
    assert pool.peak_size == 1
    assert pool.cold_starts + pool.warm_hits == len(schedule)


def test_release_race_cannot_steal_from_queued_waiter():
    """Regression for the ROADMAP non-FIFO grant bug: requests 0 and 1
    arrive together (1 queues behind the single-executor cap), and
    request 2 arrives in the same instant request 0 releases. Before
    the reserved hand-off, request 2 saw the sandbox idle between the
    release and the waiter's wake-up and was granted ``[0, 2, 1]``;
    the reservation makes the grant order the arrival order."""
    pool, grants, violations = run_schedule(
        [(0.0, 0.01), (0.0, 0.01), (0.16, 0.01)], max_executors=1)
    assert violations == []
    assert grants == [0, 1, 2]


def test_stale_handoff_requeues_at_front():
    """A waiter whose reserved hand-off goes stale (the node crashed
    between the hand-off and its wake-up) must not lose its queue
    position: it re-enters at the *front*, so a younger queued request
    cannot pass it. Pre-fix, the stale waiter re-queued at the back
    and the grants came out ``[0, 2, 1]``."""
    sim, pool = make_pool(keep_alive=0.05, max_executors=1, nodes=2)
    grants = []
    held = []

    def request(i, hold, release=True):
        def flow():
            ex = yield from pool.acquire()
            grants.append(i)
            held.append(ex)
            if release:
                yield sim.timeout(hold)
                pool.release(ex)
        return flow()

    def driver():
        # Request 0 holds the only executor; 1 and 2 queue in order.
        yield sim.timeout(0.3)
        ex = held[0]
        # Release hands (reserves) the sandbox to request 1, and its
        # node dies in the same instant — before request 1 resumes.
        pool.release(ex)
        ex.node.crash()
        # The stale sandbox reaps after 0.05 s; then a prewarm lands a
        # fresh one on the surviving node and feeds the queue front.
        yield sim.timeout(0.2)
        yield from pool.prewarm()

    sim.spawn(request(0, 0.0, release=False), name="req-0")
    sim.spawn(request(1, 0.01), name="req-1")  # queues
    sim.spawn(request(2, 0.01), name="req-2")  # queues behind 1
    sim.spawn(driver(), name="driver")
    sim.run()
    assert grants == [0, 1, 2]


@settings(max_examples=20, deadline=None)
@given(schedule=SCHEDULES, cap=st.integers(1, 3))
def test_capped_pool_never_exceeds_cap(schedule, cap):
    pool, grants, violations = run_schedule(schedule, max_executors=cap)
    assert violations == []
    assert pool.peak_size <= cap


# -- gauge-drift regression (the audited provision/reap/fail paths) -------

def test_gauge_counts_inflight_provisioning():
    """The size gauge includes cold starts in flight: their resources
    are already allocated, so a controller reading the gauge mid-cold
    must see them (this is the drift the audit fixed)."""
    sim, pool = make_pool()
    seen = []

    def probe():
        # Sample mid-provision: the MICROVM cold start takes 150 ms.
        yield sim.timeout(0.05)
        seen.append((pool._live_gauge.level, pool.size,
                     pool.provisioning))

    def flow():
        executor = yield from pool.acquire()
        pool.release(executor)

    sim.spawn(probe())
    sim.spawn(flow())
    sim.run()
    assert seen == [(1, 0, 1)]  # gauge=1 while live executors are 0
    assert pool.peak_size == 1


def test_gauge_and_peak_agree_after_failed_placement_then_queue():
    """A request that queues at the cap never bumps the gauge; the
    eventual hand-off keeps gauge == roster."""
    sim, pool = make_pool(max_executors=1)
    order = []

    def request(i, hold):
        def flow():
            executor = yield from pool.acquire()
            order.append(i)
            yield sim.timeout(hold)
            pool.release(executor)
        return flow()

    sim.spawn(request(0, 0.2))
    sim.spawn(request(1, 0.1))
    sim.run()
    assert order == [0, 1]
    assert pool.queue_waits == 1
    assert pool.peak_size == 1
    assert pool._live_gauge.peak == 1
    assert pool._live_gauge.level == 0  # reaped back to zero


def test_gauge_prunes_executors_reaped_by_shrink():
    sim, pool = make_pool(keep_alive=100.0)

    def flow():
        executors = []
        for _ in range(3):
            executors.append((yield from pool.acquire()))
        for executor in executors:
            pool.release(executor)
        assert pool.size == 3
        assert pool.shrink(2) == 2
        assert pool.size == 1
        assert pool._live_gauge.level == 1
        assert len(pool._executors) == 1

    sim.run_until_event(sim.spawn(flow()))


def test_prewarm_lands_idle_and_counts_separately():
    """A prewarmed sandbox is not a cold start: it lands idle, serves
    the next acquire as a warm hit, and is tallied under
    ``prewarmed``."""
    sim, pool = make_pool(keep_alive=50.0)

    def flow():
        executor = yield from pool.prewarm()
        assert executor is not None
        assert executor.prewarmed
        assert not executor.busy
        assert pool.prewarmed == 1
        assert pool.cold_starts == 0
        granted = yield from pool.acquire()
        assert granted is executor
        assert pool.warm_hits == 1
        assert pool.cold_starts == 0
        pool.release(granted)

    sim.run_until_event(sim.spawn(flow()))


def test_prewarm_respects_cap_and_feeds_waiters():
    sim, pool = make_pool(max_executors=1)

    def flow():
        first = yield from pool.prewarm()
        assert first is not None
        second = yield from pool.prewarm()
        assert second is None  # at cap
        assert pool.metrics.counter("warmpool.prewarm_skipped",
                                    pool="fn/impl").value == 1

    sim.run_until_event(sim.spawn(flow()))
    sim.run()  # drain: the keep-alive reaper fires
    assert pool.size == 0


def test_keep_alive_reaper_respects_autoscale_floor():
    sim, pool = make_pool(keep_alive=1.0)
    pool.target_warm = 1

    def flow():
        executor = yield from pool.acquire()
        pool.release(executor)

    sim.run_until_event(sim.spawn(flow()))
    sim.run()  # let the reaper fire
    assert pool.size == 1  # floor vetoed the reap
    pool.target_warm = None
    assert pool.shrink(1) == 1
    assert pool.size == 0


def test_set_keep_alive_validates_and_applies_to_new_reapers():
    sim, pool = make_pool(keep_alive=10.0)
    with pytest.raises(ValueError):
        pool.set_keep_alive(-1.0)
    pool.set_keep_alive(0.5)

    def flow():
        executor = yield from pool.acquire()
        pool.release(executor)

    sim.run_until_event(sim.spawn(flow()))
    sim.run()
    # Reaped after the *new* 0.5 s window, not the constructor's 10 s.
    assert pool.size == 0
    assert sim.now < 5.0
