"""Tests for platforms, executors, and warm pools."""

import pytest

from repro.cluster import build_cluster, cpu_task, gpu_task
from repro.cluster.latency import SYSCALL, WASM_CALL
from repro.faas import (
    CONTAINER,
    GPU_CONTAINER,
    MICROVM,
    WASM,
    Executor,
    ExecutorStateError,
    PlacementFailedError,
    PlatformSpec,
    WarmPool,
)
from repro.sim import MS, Simulator


def make_cluster(sim=None):
    sim = sim or Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=4,
                         gpu_nodes_per_rack=1)
    return sim, topo


def run(sim, gen):
    return sim.run_until_event(sim.spawn(gen))


# -------------------------------------------------------------- PlatformSpec
def test_platform_isolation_matches_table1():
    assert CONTAINER.isolation_call == SYSCALL
    assert WASM.isolation_call == WASM_CALL
    assert MICROVM.isolation_call > CONTAINER.isolation_call
    assert WASM.cold_start < MICROVM.cold_start < CONTAINER.cold_start


def test_platform_validation():
    with pytest.raises(ValueError):
        PlatformSpec("bad", isolation_call=-1, cold_start=0)
    with pytest.raises(ValueError):
        PlatformSpec("bad", isolation_call=0, cold_start=0,
                     compute_efficiency=0)


# ------------------------------------------------------------------ Executor
def test_executor_lifecycle_allocates_and_releases():
    sim, topo = make_cluster()
    node = topo.node("rack0-n1")
    ex = Executor(sim, node, CONTAINER, cpu_task(cpus=2, memory_gb=2))

    def flow():
        yield from ex.provision()
        assert node.allocated.cpus == 2
        ex.mark_busy()
        yield from ex.compute(5e10)  # one core-second of work
        ex.mark_idle()
        ex.shutdown()

    run(sim, flow())
    assert node.allocated.cpus == 0
    # Work takes one second, stretched by this sandbox's own share of
    # the machine's interference model (2 of 32 cores allocated).
    expected_compute = 1.0 * (1 + node.interference_alpha
                              * 2 / node.capacity.cpus)
    assert sim.now == pytest.approx(CONTAINER.cold_start
                                    + expected_compute)


def test_executor_requires_device():
    sim, topo = make_cluster()
    cpu_only = topo.node("rack0-n1")  # non-GPU node
    with pytest.raises(ExecutorStateError):
        Executor(sim, cpu_only, GPU_CONTAINER, gpu_task())


def test_gpu_executor_computes_faster():
    sim, topo = make_cluster()
    gpu_node = topo.node("rack0-n0")

    def flow():
        cpu_ex = Executor(sim, gpu_node, CONTAINER, cpu_task())
        gpu_ex = Executor(sim, gpu_node, GPU_CONTAINER, gpu_task())
        yield from cpu_ex.provision()
        yield from gpu_ex.provision()
        cpu_time = yield from cpu_ex.compute(1e12)
        gpu_time = yield from gpu_ex.compute(1e12)
        return cpu_time, gpu_time

    cpu_time, gpu_time = run(sim, flow())
    assert gpu_time < cpu_time / 10


def test_executor_state_machine_guards():
    sim, topo = make_cluster()
    ex = Executor(sim, topo.node("rack0-n1"), CONTAINER, cpu_task())
    with pytest.raises(ExecutorStateError):
        ex.mark_busy()  # not provisioned
    with pytest.raises(ExecutorStateError):
        ex.shutdown()

    def flow():
        yield from ex.provision()

    run(sim, flow())
    ex.mark_busy()
    with pytest.raises(ExecutorStateError):
        ex.mark_busy()
    with pytest.raises(ExecutorStateError):
        ex.shutdown()  # busy
    ex.mark_idle()
    with pytest.raises(ExecutorStateError):
        ex.mark_idle()


def test_isolation_cost_scales_with_calls():
    sim, topo = make_cluster()
    ex = Executor(sim, topo.node("rack0-n1"), WASM, cpu_task())
    assert ex.isolation_cost(1000) == pytest.approx(1000 * WASM_CALL)
    with pytest.raises(ValueError):
        ex.isolation_cost(-1)


# ------------------------------------------------------------------ WarmPool
def first_fit_placer(topo):
    def place(resources, platform, preferred_node=None):
        candidates = topo.live_nodes()
        if preferred_node is not None:
            candidates = ([n for n in candidates
                           if n.node_id == preferred_node]
                          + [n for n in candidates
                             if n.node_id != preferred_node])
        for node in candidates:
            if node.has_device(platform.device_kind) and node.can_fit(
                    resources):
                return node
        return None
    return place


def test_pool_cold_start_then_warm_hit():
    sim, topo = make_cluster()
    pool = WarmPool(sim, "fn", CONTAINER, cpu_task(),
                    placer=first_fit_placer(topo), keep_alive=100.0)

    def flow():
        ex1 = yield from pool.acquire()
        pool.release(ex1)
        ex2 = yield from pool.acquire()
        pool.release(ex2)
        return ex1, ex2

    ex1, ex2 = run(sim, flow())
    assert ex1 is ex2
    assert pool.cold_starts == 1
    assert pool.warm_hits == 1


def test_pool_scales_out_under_concurrency():
    sim, topo = make_cluster()
    pool = WarmPool(sim, "fn", CONTAINER, cpu_task(),
                    placer=first_fit_placer(topo))
    held = []

    def claim():
        ex = yield from pool.acquire()
        held.append(ex)

    for _ in range(3):
        sim.spawn(claim())
    sim.run()
    assert pool.cold_starts == 3
    assert len({e.node.node_id for e in held}) >= 1
    assert pool.size == 3


def test_pool_reaps_idle_executors_scale_to_zero():
    sim, topo = make_cluster()
    pool = WarmPool(sim, "fn", CONTAINER, cpu_task(),
                    placer=first_fit_placer(topo), keep_alive=10.0)

    def flow():
        ex = yield from pool.acquire()
        pool.release(ex)
        yield sim.timeout(30.0)

    run(sim, flow())
    assert pool.size == 0  # scaled back to zero
    node_alloc = sum(n.allocated.cpus for n in topo.nodes)
    assert node_alloc == 0


def test_pool_keep_alive_resets_on_reuse():
    sim, topo = make_cluster()
    pool = WarmPool(sim, "fn", CONTAINER, cpu_task(),
                    placer=first_fit_placer(topo), keep_alive=10.0)

    def flow():
        ex = yield from pool.acquire()
        pool.release(ex)
        yield sim.timeout(8.0)      # before the reaper fires
        ex2 = yield from pool.acquire()
        assert ex2 is ex
        pool.release(ex2)
        yield sim.timeout(8.0)      # original reaper must not fire now
        assert pool.size == 1
        yield sim.timeout(5.0)      # second window expires
        assert pool.size == 0

    run(sim, flow())


def test_pool_max_executors_queues_at_cap():
    """Hitting the concurrency cap queues the caller (latency), it does
    not fail the invocation — production FaaS limit behavior."""
    sim, topo = make_cluster()
    pool = WarmPool(sim, "fn", CONTAINER, cpu_task(),
                    placer=first_fit_placer(topo), max_executors=1)
    order = []

    def holder():
        ex = yield from pool.acquire()
        order.append(("holder", sim.now))
        yield sim.timeout(5.0)
        pool.release(ex)

    def queued():
        ex = yield from pool.acquire()
        order.append(("queued", sim.now))
        pool.release(ex)

    sim.spawn(holder())
    sim.spawn(queued())
    sim.run()
    assert order[0][0] == "holder"
    assert order[1][0] == "queued"
    assert order[1][1] >= order[0][1] + 5.0  # waited for the release
    assert pool.queue_waits == 1
    assert pool.cold_starts == 1   # the queued caller reused, not grew
    assert pool.peak_size == 1     # the cap was never exceeded


def test_pool_placement_failure():
    sim, topo = make_cluster()
    pool = WarmPool(sim, "fn", CONTAINER, cpu_task(cpus=1000),
                    placer=first_fit_placer(topo))

    def flow():
        yield from pool.acquire()

    with pytest.raises(PlacementFailedError):
        run(sim, flow())


def test_pool_prefers_colocated_warm_executor():
    sim, topo = make_cluster()
    pool = WarmPool(sim, "fn", CONTAINER, cpu_task(),
                    placer=first_fit_placer(topo))

    def flow():
        a = yield from pool.acquire()
        b = yield from pool.acquire()
        pool.release(a)
        pool.release(b)
        target = b.node.node_id
        c = yield from pool.acquire(preferred_node=target)
        return b, c

    b, c = run(sim, flow())
    # Both warm executors sit on the same first-fit node here, so make
    # the weaker but meaningful assertion: the hint was honored.
    assert c.node.node_id == b.node.node_id


def test_pool_validation():
    sim, topo = make_cluster()
    with pytest.raises(ValueError):
        WarmPool(sim, "fn", CONTAINER, cpu_task(),
                 placer=first_fit_placer(topo), keep_alive=-1)
