"""The deterministic controller harness: convergence, stability,
scale-to-zero, the burst-workload win, and FixedPolicy transparency."""

import pytest

from repro.faas import (
    AutoscalePolicy,
    ControllerHarness,
    Decision,
    FixedPolicy,
    HitRatePolicy,
    Phase,
    QueueDepthPolicy,
    burst_phases,
    make_policy_factory,
    ramp_phases,
)

BURSTS = burst_phases(bursts=3, burst_duration=10.0, burst_rate=10.0,
                      gap=60.0)


# -- schedules -----------------------------------------------------------

def test_phase_validation():
    with pytest.raises(ValueError):
        Phase(duration=0.0, rate=1.0)
    with pytest.raises(ValueError):
        Phase(duration=1.0, rate=-1.0)
    with pytest.raises(ValueError):
        burst_phases(bursts=0, burst_duration=1, burst_rate=1, gap=1)
    with pytest.raises(ValueError):
        ramp_phases(1.0, 2.0, steps=1, step_duration=1.0)


def test_burst_schedule_shape():
    phases = burst_phases(bursts=3, burst_duration=5.0, burst_rate=4.0,
                          gap=20.0)
    assert [p.rate for p in phases] == [4.0, 0.0, 4.0, 0.0, 4.0]
    times = ControllerHarness(seed=1).arrival_times(phases)
    assert len(times) == 3 * 20  # 5 s x 4/s per burst
    assert times == sorted(times)
    # No arrivals inside the idle valleys.
    assert not [t for t in times if 5.0 < t < 25.0]


def test_jittered_schedule_is_seed_deterministic():
    phases = [Phase(10.0, 5.0, jitter=True)]
    a = ControllerHarness(seed=9).arrival_times(phases)
    b = ControllerHarness(seed=9).arrival_times(phases)
    c = ControllerHarness(seed=10).arrival_times(phases)
    assert a == b
    assert a != c


def test_ramp_schedule_rates_are_monotone():
    phases = ramp_phases(1.0, 9.0, steps=5, step_duration=2.0)
    rates = [p.rate for p in phases]
    assert rates == sorted(rates)
    assert rates[0] == 1.0 and rates[-1] == 9.0


# -- FixedPolicy is the identity --------------------------------------------

def test_fixed_policy_is_behavior_identical_to_no_controller():
    """The control arm: a FixedPolicy controller observes but never
    actuates, so the served workload must be *exactly* the
    pre-controller system's — same cold starts, same latency list to
    the bit, same held executor-seconds."""
    fixed = ControllerHarness(policy="fixed", seed=47).run(BURSTS)
    bare = ControllerHarness(policy=None, seed=47).run(BURSTS)
    assert fixed.behavior_signature() == bare.behavior_signature()
    assert fixed.ticks > 0
    assert bare.ticks == 0
    # And it really made no decisions that touched the pool.
    assert all(r.decision.target_warm is None
               and r.decision.keep_alive is None
               for r in fixed.controller.history)


# -- the burst-workload win ----------------------------------------------

def test_queue_depth_policy_cuts_cold_starts_on_bursts():
    """The acceptance bar: >= 30% fewer cold starts than FixedPolicy
    on the burst schedule, while still scaling to zero at the end."""
    fixed = ControllerHarness(policy="fixed", seed=47).run(BURSTS)
    qd = ControllerHarness(policy="queue-depth", seed=47).run(BURSTS)
    assert fixed.cold_starts > 0
    reduction = 1.0 - qd.cold_starts / fixed.cold_starts
    assert reduction >= 0.30
    assert qd.final_size == 0
    assert qd.completed == fixed.completed == qd.offered
    assert qd.failed == 0


def test_hit_rate_policy_also_wins_on_bursts():
    fixed = ControllerHarness(policy="fixed", seed=47).run(BURSTS)
    hr = ControllerHarness(policy=HitRatePolicy, seed=47).run(BURSTS)
    assert 1.0 - hr.cold_starts / fixed.cold_starts >= 0.30
    assert hr.final_size == 0


def test_warmth_survives_valleys_not_relabeled_cold_starts():
    """The win must come from retention across valleys (bursts 2+ hit
    warm), not from recounting demand cold starts as prewarms."""
    qd = ControllerHarness(policy="queue-depth", seed=47).run(BURSTS)
    first_burst_end = 10.0
    cold_spans = [t for (t, _v) in
                  qd.cloud.metrics.series("warmpool.cold_starts",
                                          pool="fn/impl",
                                          platform="microvm")]
    # Cold starts stopped growing after the first burst.
    deltas = qd.cloud.metrics.window_delta(
        "warmpool.cold_starts", first_burst_end + 5.0, pool="fn/impl")
    assert deltas == 0
    assert cold_spans  # the series itself was sampled
    # Prewarming stayed a side channel, not the bulk of provisioning.
    assert qd.prewarmed < qd.cold_starts + qd.warm_hits


# -- convergence and stability -------------------------------------------

def test_controller_converges_on_steady_load():
    """Under constant load the target settles within a few ticks and
    stays there: no oscillation (no up-down-up churn) mid-phase."""
    steady = [Phase(40.0, 5.0)]
    qd = ControllerHarness(policy="queue-depth", seed=11).run(steady)
    targets = [r.decision.target_warm
               for r in qd.controller.history
               if r.decision.target_warm is not None
               and r.observation.arrivals > 0]
    assert len(targets) >= 10
    settled = targets[5:]
    # Converged: the settled targets stay within a 1-executor band.
    assert max(settled) - min(settled) <= 1
    # Stable: no scale_down actions while load is offered; the only
    # shrink is the final idle-expiry teardown to zero.
    downs = [r for r in qd.controller.history
             if any(a.startswith("scale_down") for a in r.actions)]
    assert len(downs) == 1
    assert downs[0].decision.target_warm == 0


def test_scale_to_zero_after_die_off():
    """A die-off schedule ends with the pool empty, the target at
    zero, and zero live-sandbox gauge — an unused function costs
    nothing again."""
    die_off = [Phase(10.0, 8.0), Phase(5.0, 1.0)]
    qd = ControllerHarness(policy="queue-depth", seed=23).run(die_off)
    assert qd.final_size == 0
    assert qd.pool.target_warm == 0
    last = qd.controller.history[-1]
    assert last.decision.target_warm == 0
    assert qd.cloud.metrics.window_level("warmpool.size",
                                         pool="fn/impl") == 0
    # The autoscale.target gauge agrees.
    assert qd.cloud.metrics.gauge("autoscale.target",
                                  pool="fn/impl").level == 0


def test_controller_emits_spans_and_metrics():
    qd = ControllerHarness(policy="queue-depth", seed=47).run(BURSTS)
    counters = qd.metrics["counters"]
    assert any(k.startswith("autoscale.action") for k in counters)
    # Actions are labeled per pool and kind.
    assert any("pool=fn/impl" in k for k in counters
               if k.startswith("autoscale.action"))
    gauges = qd.metrics["gauges"]
    assert any(k.startswith("autoscale.target") for k in gauges)


def test_controller_sleeps_when_pools_are_empty():
    """An idle controller parks instead of ticking forever — the
    simulation drains and terminates even though the control loop is
    an infinite process."""
    one = [Phase(2.0, 1.0)]
    qd = ControllerHarness(policy="queue-depth", seed=5,
                           keep_alive=2.0).run(one)
    assert qd.final_size == 0
    # Finite end time not far past the workload + keep-alive window.
    assert qd.duration < 60.0


# -- policy factory ------------------------------------------------------

def test_make_policy_factory_accepts_all_spec_forms():
    assert isinstance(make_policy_factory("fixed")(), FixedPolicy)
    assert isinstance(make_policy_factory(QueueDepthPolicy)(),
                      QueueDepthPolicy)
    proto = QueueDepthPolicy(headroom=0.5)
    made = make_policy_factory(proto)()
    assert isinstance(made, QueueDepthPolicy)
    assert made.headroom == 0.5
    assert made is not proto  # per-pool copy, never shared state

    class Custom(AutoscalePolicy):
        def decide(self, obs):
            return Decision()

    assert isinstance(make_policy_factory(lambda: Custom())(), Custom)
    with pytest.raises(ValueError):
        make_policy_factory("no-such-policy")
    with pytest.raises(TypeError):
        make_policy_factory(42)


def test_policy_parameter_validation():
    with pytest.raises(ValueError):
        QueueDepthPolicy(smoothing=0.0)
    with pytest.raises(ValueError):
        QueueDepthPolicy(stretch=0.5)
    with pytest.raises(ValueError):
        QueueDepthPolicy(min_keep_alive=10.0, max_keep_alive=1.0)
    with pytest.raises(ValueError):
        QueueDepthPolicy(downscale_patience=0)
    with pytest.raises(ValueError):
        HitRatePolicy(target_hit_rate=0.0)
    with pytest.raises(ValueError):
        HitRatePolicy(stretch=0.5)
