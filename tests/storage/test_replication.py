"""Tests for quorum (linearizable) and gossip (eventual) replication."""

import pytest

from repro.cluster import DC_2021, FailureInjector, Network, build_cluster
from repro.sim import MS, SECOND, Simulator
from repro.storage import (
    KeyNotFoundError,
    QuorumUnavailableError,
    ReplicatedStore,
    gather_first_k,
)


def make_store(replicas=3, propagation=0.050, racks=2, nodes_per_rack=4):
    sim = Simulator()
    topo = build_cluster(sim, racks=racks, nodes_per_rack=nodes_per_rack,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    replica_nodes = [n.node_id for n in topo.nodes[:replicas]]
    store = ReplicatedStore(sim, net, replica_nodes,
                            propagation_delay_mean=propagation)
    return sim, topo, net, store


def run(sim, gen):
    return sim.run_until_event(sim.spawn(gen))


# ------------------------------------------------------------ gather_first_k
def test_gather_returns_first_k():
    sim = Simulator()

    def job(delay, tag):
        yield sim.timeout(delay)
        return tag

    def flow():
        results = yield from gather_first_k(
            sim, [job(3.0, "slow"), job(1.0, "fast"), job(2.0, "mid")], 2)
        return results

    assert set(run(sim, flow())) == {"fast", "mid"}


def test_gather_tolerates_failures_while_quorum_possible():
    sim = Simulator()

    def ok(delay, tag):
        yield sim.timeout(delay)
        return tag

    def bad(delay):
        yield sim.timeout(delay)
        raise RuntimeError("replica down")

    def flow():
        return (yield from gather_first_k(
            sim, [bad(0.5), ok(1.0, "a"), ok(2.0, "b")], 2))

    assert run(sim, flow()) == ["a", "b"]


def test_gather_fails_when_quorum_impossible():
    sim = Simulator()

    def bad(delay):
        yield sim.timeout(delay)
        raise RuntimeError("down")

    def ok(delay):
        yield sim.timeout(delay)
        return "x"

    def flow():
        return (yield from gather_first_k(sim, [bad(1.0), bad(2.0), ok(5.0)],
                                          2))

    with pytest.raises(QuorumUnavailableError):
        run(sim, flow())


def test_gather_k_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        # Consume the generator to trigger validation.
        next(gather_first_k(sim, [], 1))


# --------------------------------------------------------------- linearizable
def test_write_then_read_linearizable():
    sim, topo, net, store = make_store()

    def flow():
        version = yield from store.write_linearizable("rack1-n0", "k",
                                                      1024, meta="v1")
        record = yield from store.read_linearizable("rack1-n1", "k")
        return version, record

    version, record = run(sim, flow())
    assert record.version == version
    assert record.meta == "v1"
    assert record.nbytes == 1024


def test_read_linearizable_missing_key():
    sim, topo, net, store = make_store()

    def flow():
        yield from store.read_linearizable("rack1-n0", "nope")

    with pytest.raises(KeyNotFoundError):
        run(sim, flow())


def test_writes_monotonically_increase_version():
    sim, topo, net, store = make_store()

    def flow():
        v1 = yield from store.write_linearizable("rack1-n0", "k", 10)
        v2 = yield from store.write_linearizable("rack1-n1", "k", 10)
        v3 = yield from store.write_linearizable("rack1-n2", "k", 10)
        return [v1, v2, v3]

    versions = run(sim, flow())
    assert versions == sorted(versions)
    assert versions[0][0] < versions[1][0] < versions[2][0]


def test_majority_size():
    sim, topo, net, store = make_store(replicas=3)
    assert store.majority == 2
    sim, topo, net, store5 = make_store(replicas=5)
    assert store5.majority == 3


def test_linearizable_survives_minority_failure():
    sim, topo, net, store = make_store(replicas=3)
    topo.node(store.replica_nodes[0]).crash()

    def flow():
        yield from store.write_linearizable("rack1-n0", "k", 64, meta="ok")
        record = yield from store.read_linearizable("rack1-n1", "k")
        return record

    record = run(sim, flow())
    assert record.meta == "ok"


def test_linearizable_blocks_on_majority_failure():
    sim, topo, net, store = make_store(replicas=3)
    topo.node(store.replica_nodes[0]).crash()
    topo.node(store.replica_nodes[1]).crash()

    def flow():
        yield from store.write_linearizable("rack1-n0", "k", 64)

    with pytest.raises(QuorumUnavailableError):
        run(sim, flow())


def test_read_sees_latest_completed_write():
    """The linearizability core: once a write completes, every later
    read returns it (or something newer), regardless of reader node."""
    sim, topo, net, store = make_store(replicas=3)
    observed = []

    def writer():
        yield from store.write_linearizable("rack0-n1", "k", 8, meta="A")
        yield from store.write_linearizable("rack0-n2", "k", 8, meta="B")

    def reader():
        yield sim.timeout(1.0)  # well after both writes complete
        record = yield from store.read_linearizable("rack1-n3", "k")
        observed.append(record.meta)

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    assert observed == ["B"]


def test_read_repair_reconciles_divergent_replicas():
    sim, topo, net, store = make_store(replicas=3)

    def flow():
        yield from store.write_linearizable("rack0-n1", "k", 8, meta="x")
        # Manually diverge one replica to an older version.
        lagging = store.replicas[store.replica_nodes[2]]
        lagging._records.pop("k", None)
        record = yield from store.read_linearizable("rack1-n0", "k")
        return record

    record = run(sim, flow())
    assert record.meta == "x"
    # After repair, at least a majority holds the winning version.
    holders = sum(1 for nid in store.replica_nodes
                  if store.replicas[nid].version_of("k") == record.version)
    assert holders >= store.majority


# -------------------------------------------------------------------- eventual
def test_eventual_write_acks_fast_then_propagates():
    sim, topo, net, store = make_store(propagation=0.050)
    ack_time = []

    def flow():
        yield from store.write_eventual("rack0-n1", "k", 256, meta="v")
        ack_time.append(sim.now)

    sim.spawn(flow())
    sim.run()
    # Ack happens after a single replica round trip (sub-millisecond),
    # far sooner than full propagation.
    assert ack_time[0] < 5 * MS
    assert store.divergence("k") == 1  # all replicas converged by drain


def test_eventual_read_can_be_stale():
    sim, topo, net, store = make_store(propagation=10.0)  # slow gossip
    results = []

    def flow():
        # Write lands on the last replica (the writer's own node);
        # a cross-rack reader falls back to the *first* replica.
        yield from store.write_eventual(store.replica_nodes[2], "k", 8,
                                        meta="new")
        # Read from a different rack => closest replica is a lagging one.
        try:
            record = yield from store.read_eventual("rack1-n3", "k")
            results.append(record.meta)
        except KeyNotFoundError:
            results.append(None)

    sim.spawn(flow())
    sim.run(until=1.0)
    assert results == [None]  # stale: the write hasn't propagated yet


def test_eventual_converges_after_propagation():
    sim, topo, net, store = make_store(propagation=0.010)

    def flow():
        yield from store.write_eventual(store.replica_nodes[0], "k", 8,
                                        meta="v")

    sim.spawn(flow())
    sim.run()
    assert store.divergence("k") == 1
    for nid in store.replica_nodes:
        assert store.replicas[nid].peek("k").meta == "v"


def test_eventual_faster_than_linearizable():
    """E7's mechanism: one replica ack vs quorum round trips."""
    sim, topo, net, store = make_store()

    def flow():
        t0 = sim.now
        yield from store.write_eventual("rack0-n1", "k1", 1024)
        eventual = sim.now - t0
        t1 = sim.now
        yield from store.write_linearizable("rack0-n1", "k2", 1024)
        strong = sim.now - t1
        return eventual, strong

    eventual, strong = run(sim, flow())
    assert eventual < strong / 1.5


def test_closest_replica_preference():
    sim, topo, net, store = make_store(replicas=3)
    # Client co-located with a replica reads locally.
    assert store.closest_replica(store.replica_nodes[1]) == \
        store.replica_nodes[1]
    # Client in the same rack picks the same-rack replica.
    same_rack_client = "rack0-n3"
    chosen = store.closest_replica(same_rack_client)
    assert topo.same_rack(chosen, same_rack_client)


def test_closest_replica_requires_live_node():
    sim, topo, net, store = make_store(replicas=3)
    for nid in store.replica_nodes:
        topo.node(nid).crash()
    with pytest.raises(QuorumUnavailableError):
        store.closest_replica("rack1-n0")


def test_anti_entropy_reconciles_after_partition_heals():
    sim, topo, net, store = make_store(replicas=3, propagation=0.010)
    inj = FailureInjector(sim, topo, net)
    lagging = store.replica_nodes[2]
    others = [nid for nid in store.replica_nodes if nid != lagging]
    inj.partition({lagging}, set(others), at=0.0, heal_at=5.0)
    store.start_anti_entropy(interval=1.0)

    def flow():
        yield sim.timeout(0.1)
        yield from store.write_eventual(others[0], "k", 8, meta="v")

    sim.spawn(flow())
    sim.run(until=60.0)
    assert store.replicas[lagging].peek("k") is not None
    assert store.divergence("k") == 1


def test_store_validation():
    sim = Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=2,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    with pytest.raises(ValueError):
        ReplicatedStore(sim, net, [])
    with pytest.raises(ValueError):
        ReplicatedStore(sim, net, ["rack0-n0", "rack0-n0"])
    with pytest.raises(ValueError):
        store = ReplicatedStore(sim, net, ["rack0-n0"])
        store.start_anti_entropy(0)
