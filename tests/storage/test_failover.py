"""Tests for eventual-consistency replica failover and hinted handoff."""

import pytest

from repro.cluster import DC_2021, FailureInjector, Network, build_cluster
from repro.sim import Simulator
from repro.storage import KeyNotFoundError, ReplicatedStore


def make_store(replicas=3, propagation=0.010):
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=4,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    replica_nodes = [n.node_id for n in topo.nodes[:replicas]]
    store = ReplicatedStore(sim, net, replica_nodes,
                            propagation_delay_mean=propagation)
    return sim, topo, net, store


def run(sim, gen):
    return sim.run_until_event(sim.spawn(gen))


# ---------------------------------------------------------- preference list
def test_preference_list_head_matches_closest_when_healthy():
    sim, topo, net, store = make_store()
    for client in (store.replica_nodes[0], "rack1-n0"):
        prefs = store.preference_list(client)
        assert prefs[0] == store.closest_replica(client)
        assert set(prefs) == set(store.replica_nodes)
        ranks = [store.replica_rank(client, nid) for nid in prefs]
        assert ranks == sorted(ranks)


def test_preference_list_skips_dead_and_partitioned():
    sim, topo, net, store = make_store()
    dead, cut, alive = store.replica_nodes
    topo.node(dead).crash()
    net.partition({cut}, {"rack1-n0"})
    prefs = store.preference_list("rack1-n0")
    assert prefs == [alive]


# ----------------------------------------------------------------- failover
def test_eventual_write_skips_crashed_closest_replica():
    """With the closest replica dead, the write lands on the next one
    up front — no error surfaces and no failover is charged."""
    sim, topo, net, store = make_store()
    client = store.replica_nodes[0]
    topo.node(client).crash()

    def flow():
        version = yield from store.write_eventual("rack1-n0", "k", 128)
        return version

    assert run(sim, flow()) is not None
    assert net.metrics.counters().get("store.failover", 0.0) == 0
    live = [nid for nid in store.replica_nodes if topo.node(nid).alive]
    assert any(store.replicas[nid].version_of("k")[0] > 0 for nid in live)


def test_mid_operation_unreachability_fails_over_and_counts():
    """A replica that goes unreachable *mid-write* triggers failover to
    the next-closest live one, charged to store.failover."""
    sim, topo, net, store = make_store()
    dead = store.replica_nodes[0]
    topo.node(dead).crash()
    # Force the stale preference order a client could have computed just
    # before the crash: the dead replica still heads the list.
    store.preference_list = lambda client: [dead] + [
        nid for nid in store.replica_nodes if nid != dead]

    def flow():
        version = yield from store.write_eventual("rack1-n0", "k", 128)
        return version

    assert run(sim, flow()) is not None
    counters = net.metrics.counters()
    assert counters.get("store.failover", 0.0) == 1
    assert any("store.failover{" in name and "op=write" in name
               for name in counters)


def test_eventual_read_fails_over_too():
    sim, topo, net, store = make_store()

    def write():
        yield from store.write_eventual("rack1-n0", "k", 256)
        yield sim.timeout(1.0)  # let propagation land everywhere

    run(sim, write())
    dead = store.replica_nodes[0]
    topo.node(dead).crash()
    store.preference_list = lambda client: [dead] + [
        nid for nid in store.replica_nodes if nid != dead]

    def read():
        record = yield from store.read_eventual("rack1-n0", "k")
        return record

    assert run(sim, read()).nbytes == 256
    assert net.metrics.counters().get("store.failover", 0.0) == 1


def test_key_miss_is_an_answer_not_a_failure():
    sim, topo, net, store = make_store()

    def read():
        yield from store.read_eventual("rack1-n0", "nope")

    with pytest.raises(KeyNotFoundError):
        run(sim, read())
    assert net.metrics.counters().get("store.failover", 0.0) == 0


def test_all_replicas_down_surfaces_the_error():
    sim, topo, net, store = make_store()
    others = {n.node_id for n in topo.nodes
              if n.node_id not in store.replica_nodes}
    net.partition(set(store.replica_nodes), others)

    def flow():
        yield from store.write_eventual("rack1-n0", "k", 64)

    with pytest.raises(Exception):
        run(sim, flow())


# ------------------------------------------------------------ hinted handoff
def test_hinted_handoff_replays_on_recovery():
    """A replica that missed propagation while crashed receives the
    write promptly when its recovery event fires."""
    sim, topo, net, store = make_store()
    down = store.replica_nodes[2]
    inj = FailureInjector(sim, topo, net)
    inj.crash_node(down, at=0.0, recover_at=2.0)

    def flow():
        yield sim.timeout(0.001)  # after the crash lands
        yield from store.write_eventual(store.replica_nodes[0], "k", 128)

    sim.spawn(flow())
    sim.run(until=5.0)
    counters = net.metrics.counters()
    assert counters.get("store.hinted_handoffs", 0.0) >= 1
    assert counters.get("store.hint_replays", 0.0) >= 1
    assert store.replicas[down].version_of("k")[0] > 0
    assert not store._hints.get(down)


def test_hint_kept_until_someone_can_deliver_it():
    """Without a recovery event the hint waits for anti-entropy: once
    the node is back and the gossip loop ticks, the write lands."""
    sim, topo, net, store = make_store()
    down = store.replica_nodes[2]
    topo.node(down).crash()  # no recovery_event published

    def flow():
        yield sim.timeout(0.001)
        yield from store.write_eventual(store.replica_nodes[0], "k", 128)

    sim.spawn(flow())
    sim.run(until=1.0)
    assert store._hints.get(down)  # stashed, still undeliverable
    assert store.replicas[down].version_of("k")[0] == 0

    topo.node(down).recover()
    store.start_anti_entropy(interval=0.5)
    sim.run(until=3.0)
    assert store.replicas[down].version_of("k")[0] > 0
    assert net.metrics.counters().get("store.hint_replays", 0.0) >= 1


def test_hint_keeps_only_the_newest_version():
    sim, topo, net, store = make_store()
    down = store.replica_nodes[2]
    inj = FailureInjector(sim, topo, net)
    inj.crash_node(down, at=0.0, recover_at=3.0)

    def flow():
        yield sim.timeout(0.001)
        yield from store.write_eventual(store.replica_nodes[0], "k", 128)
        yield sim.timeout(0.5)
        yield from store.write_eventual(store.replica_nodes[0], "k", 512)

    sim.spawn(flow())
    sim.run(until=6.0)
    record = store.replicas[down].peek("k")
    assert record is not None and record.nbytes == 512
