"""Tests for media models and the node-local store."""

import pytest

from repro.sim import MS, US, Simulator
from repro.storage import (
    DISK,
    NVME,
    RAM,
    KeyNotFoundError,
    LocalStore,
    Record,
)


def run(sim, gen):
    return sim.run_until_event(sim.spawn(gen))


def test_media_ordering():
    """RAM << NVMe << disk for small accesses."""
    assert RAM.access_time(1024) < NVME.access_time(1024) / 10
    assert NVME.access_time(1024) < DISK.access_time(1024) / 10


def test_medium_access_time_components():
    assert NVME.access_time(0) == pytest.approx(20 * US)
    assert NVME.access_time(2_000_000_000) == pytest.approx(
        20 * US + 1.0)
    with pytest.raises(ValueError):
        NVME.access_time(-1)


def test_write_then_read_roundtrip():
    sim = Simulator()
    store = LocalStore(sim, "n0", RAM)

    def flow():
        applied = yield from store.write(
            "k", Record(version=(1, "w"), nbytes=100, meta="m"))
        assert applied
        record = yield from store.read("k")
        return record

    record = run(sim, flow())
    assert record.nbytes == 100
    assert record.meta == "m"
    assert store.bytes_stored == 100


def test_read_missing_key_raises_after_charge():
    sim = Simulator()
    store = LocalStore(sim, "n0", NVME)

    def flow():
        yield from store.read("missing")

    with pytest.raises(KeyNotFoundError):
        run(sim, flow())
    assert sim.now == pytest.approx(NVME.access_time(0))


def test_stale_write_ignored():
    sim = Simulator()
    store = LocalStore(sim, "n0", RAM)

    def flow():
        yield from store.write("k", Record((5, "a"), nbytes=10))
        applied = yield from store.write("k", Record((3, "b"), nbytes=99))
        return applied

    assert run(sim, flow()) is False
    assert store.peek("k").version == (5, "a")
    assert store.bytes_stored == 10


def test_version_tie_broken_by_writer():
    sim = Simulator()
    store = LocalStore(sim, "n0", RAM)

    def flow():
        yield from store.write("k", Record((1, "b"), nbytes=10))
        applied = yield from store.write("k", Record((1, "a"), nbytes=20))
        return applied

    # (1, "a") < (1, "b"): the later-sorting writer wins ties.
    assert run(sim, flow()) is False


def test_overwrite_updates_bytes_stored():
    sim = Simulator()
    store = LocalStore(sim, "n0", RAM)

    def flow():
        yield from store.write("k", Record((1, "w"), nbytes=100))
        yield from store.write("k", Record((2, "w"), nbytes=40))

    run(sim, flow())
    assert store.bytes_stored == 40
    assert len(store) == 1


def test_delete():
    sim = Simulator()
    store = LocalStore(sim, "n0", RAM)

    def flow():
        yield from store.write("k", Record((1, "w"), nbytes=100))
        removed = yield from store.delete("k")
        missing = yield from store.delete("k")
        return removed, missing

    removed, missing = run(sim, flow())
    assert removed is True and missing is False
    assert store.bytes_stored == 0
    assert "k" not in store


def test_version_of_absent_is_zero():
    sim = Simulator()
    store = LocalStore(sim, "n0", RAM)
    assert store.version_of("nope") == (0, "")


def test_medium_latency_charged_for_reads():
    sim = Simulator()
    store = LocalStore(sim, "n0", DISK)

    def flow():
        yield from store.write("k", Record((1, "w"), nbytes=0))
        t0 = sim.now
        yield from store.read("k")
        return sim.now - t0

    elapsed = run(sim, flow())
    assert elapsed == pytest.approx(4 * MS)
