"""Tests for the object store, managed KV, and NFS services."""

import pytest

from repro.cluster import DC_2021, Network, build_cluster
from repro.cost import CostMeter
from repro.net import RestTransport, SessionTransport, SizedPayload
from repro.security import AclAuthenticator, Right, Token
from repro.sim import MS, Simulator
from repro.storage import (
    FileHandleError,
    KeyNotFoundError,
    ManagedKVService,
    NfsServer,
    ObjectExistsError,
    ObjectStoreService,
    nfs_fetch,
)


def make_env(racks=3, nodes_per_rack=4):
    sim = Simulator()
    topo = build_cluster(sim, racks=racks, nodes_per_rack=nodes_per_rack,
                         gpu_nodes_per_rack=0)
    net = Network(sim, topo, DC_2021)
    return sim, topo, net


def run(sim, gen):
    return sim.run_until_event(sim.spawn(gen))


# ------------------------------------------------------------- object store
def test_objectstore_put_get_roundtrip():
    sim, topo, net = make_env()
    meter = CostMeter()
    svc = ObjectStoreService(sim, net, "rack0-n0",
                             ["rack0-n1", "rack1-n0", "rack2-n0"],
                             meter=meter)
    rest = RestTransport(net)

    def flow():
        key = yield from rest.call(
            "rack2-n3", svc, "put",
            {"key": None, "payload": SizedPayload(4096, meta="photo")})
        blob = yield from rest.call("rack2-n3", svc, "get", {"key": key})
        size = yield from rest.call("rack2-n3", svc, "head", {"key": key})
        return key, blob, size

    key, blob, size = run(sim, flow())
    assert key == "obj-1"
    assert blob == SizedPayload(4096, meta="photo")
    assert size == 4096
    assert meter.units("object.put") == 1
    assert meter.units("object.get") == 1


def test_objectstore_immutability_enforced():
    sim, topo, net = make_env()
    svc = ObjectStoreService(sim, net, "rack0-n0",
                             ["rack0-n1", "rack1-n0", "rack2-n0"])
    rest = RestTransport(net)

    def flow():
        yield from rest.call("rack1-n1", svc, "put",
                             {"key": "x", "payload": SizedPayload(10)})
        yield from rest.call("rack1-n1", svc, "put",
                             {"key": "x", "payload": SizedPayload(20)})

    with pytest.raises(ObjectExistsError):
        run(sim, flow())


def test_objectstore_get_missing_raises():
    sim, topo, net = make_env()
    svc = ObjectStoreService(sim, net, "rack0-n0",
                             ["rack0-n1", "rack1-n0", "rack2-n0"])
    rest = RestTransport(net)

    def flow():
        yield from rest.call("rack1-n1", svc, "get", {"key": "ghost"})

    with pytest.raises(KeyNotFoundError):
        run(sim, flow())


# ---------------------------------------------------------------- managed KV
def make_kv(sim, net, meter=None):
    return ManagedKVService(
        sim, net, router_node="rack0-n0", metadata_node="rack0-n1",
        replica_nodes=["rack0-n2", "rack1-n0", "rack2-n0"], meter=meter)


def test_kv_put_get_roundtrip_and_billing():
    sim, topo, net = make_env()
    meter = CostMeter()
    kv = make_kv(sim, net, meter)
    auth = AclAuthenticator()
    auth.grant("managed-kv", "alice", Right.READ | Right.WRITE)
    rest = RestTransport(net, authenticator=auth)
    token = Token("alice")

    def flow():
        yield from rest.call("rack2-n3", kv, "put",
                             {"key": "k", "payload": SizedPayload(1024)},
                             token=token, right=Right.WRITE)
        value = yield from rest.call("rack2-n3", kv, "get",
                                     {"key": "k", "consistent": True},
                                     token=token)
        return value

    value = run(sim, flow())
    assert value.nbytes == 1024
    assert meter.per_million("kv.read") == pytest.approx(0.18)
    assert meter.units("kv.write") == 1
    # Stateless protocol: one auth check per call.
    assert auth.checks_performed == 2


def test_kv_requires_distinct_metadata_fleet():
    sim, topo, net = make_env()
    with pytest.raises(ValueError):
        ManagedKVService(sim, net, router_node="rack0-n0",
                         metadata_node="rack0-n0",
                         replica_nodes=["rack1-n0"])


def test_kv_eventually_consistent_read_cheaper_in_latency():
    sim, topo, net = make_env()
    kv = make_kv(sim, net)
    rest = RestTransport(net)

    def flow():
        yield from rest.call("rack2-n3", kv, "put",
                             {"key": "k", "payload": SizedPayload(1024)})
        t0 = sim.now
        yield from rest.call("rack2-n3", kv, "get",
                             {"key": "k", "consistent": True})
        strong = sim.now - t0
        t1 = sim.now
        yield from rest.call("rack2-n3", kv, "get",
                             {"key": "k", "consistent": False})
        weak = sim.now - t1
        return strong, weak

    strong, weak = run(sim, flow())
    assert weak < strong


def test_kv_get_missing_key():
    sim, topo, net = make_env()
    kv = make_kv(sim, net)
    rest = RestTransport(net)

    def flow():
        yield from rest.call("rack1-n1", kv, "get", {"key": "nope"})

    with pytest.raises(KeyNotFoundError):
        run(sim, flow())


# ----------------------------------------------------------------------- NFS
def test_nfs_create_lookup_read():
    sim, topo, net = make_env()
    meter = CostMeter()
    nfs = NfsServer(sim, net, "rack0-n0", meter=meter)
    transport = SessionTransport(net)

    def flow():
        session = yield from transport.connect("rack1-n0", nfs)
        fh = yield from session.call("create", {
            "path": "/data/file1", "payload": SizedPayload(1024, meta="d")})
        payload = yield from nfs_fetch(session, "/data/file1")
        nbytes = yield from session.call(
            "write", {"fh": fh, "payload": SizedPayload(2048)})
        return payload, nbytes

    payload, nbytes = run(sim, flow())
    assert payload == SizedPayload(1024, meta="d")
    assert nbytes == 2048


def test_nfs_lookup_missing_path():
    sim, topo, net = make_env()
    nfs = NfsServer(sim, net, "rack0-n0")
    transport = SessionTransport(net)

    def flow():
        session = yield from transport.connect("rack1-n0", nfs)
        yield from session.call("lookup", {"path": "/ghost"})

    with pytest.raises(KeyNotFoundError):
        run(sim, flow())


def test_nfs_stale_file_handle():
    sim, topo, net = make_env()
    nfs = NfsServer(sim, net, "rack0-n0")
    transport = SessionTransport(net)

    def flow():
        session = yield from transport.connect("rack1-n0", nfs)
        yield from session.call("read", {"fh": 999})

    with pytest.raises(FileHandleError):
        run(sim, flow())


def test_nfs_create_duplicate_path():
    sim, topo, net = make_env()
    nfs = NfsServer(sim, net, "rack0-n0")
    transport = SessionTransport(net)

    def flow():
        session = yield from transport.connect("rack1-n0", nfs)
        yield from session.call("create", {"path": "/a",
                                           "payload": SizedPayload(1)})
        yield from session.call("create", {"path": "/a",
                                           "payload": SizedPayload(1)})

    with pytest.raises(FileExistsError):
        run(sim, flow())


def test_nfs_fetch_faster_than_kv_get():
    """The paper's §2.1 measurement, directionally: the stateful NFS
    fetch beats the managed KV's RESTful GET for the same 1 KB."""
    sim, topo, net = make_env()
    nfs = NfsServer(sim, net, "rack0-n3")
    kv = make_kv(sim, net)
    rest = RestTransport(net)
    transport = SessionTransport(net)

    def flow():
        yield from rest.call("rack2-n3", kv, "put",
                             {"key": "k", "payload": SizedPayload(1024)})
        session = yield from transport.connect("rack2-n3", nfs)
        yield from session.call("create", {"path": "/k",
                                           "payload": SizedPayload(1024)})
        t0 = sim.now
        yield from nfs_fetch(session, "/k")
        nfs_latency = sim.now - t0
        t1 = sim.now
        yield from rest.call("rack2-n3", kv, "get",
                             {"key": "k", "consistent": True})
        kv_latency = sim.now - t1
        return nfs_latency, kv_latency

    nfs_latency, kv_latency = run(sim, flow())
    assert nfs_latency < kv_latency / 1.5
    # Both land in the sub-10ms regime of the paper's table.
    assert nfs_latency < 10 * MS and kv_latency < 10 * MS
