"""Overload gate: sweep determinism and the comparison rules.

The gate's value rests on the E24 sweep being a pure function of its
config — the open-loop arrival schedules, admission decisions, and
deadline outcomes must replay bit-for-bit — and on ``compare_overload``
actually rejecting every class of drift it documents. These tests pin
determinism on a shrunken sweep (the committed baseline pins the full
SHORT sweep) and exercise each comparison rule on fabricated docs.
"""

import pytest

from repro.bench.experiments import e24_overload
from repro.bench.experiments.e24_overload import (
    MAX_UNPROTECTED_FRACTION,
    MIN_GATED_FRACTION,
    MIN_JAIN,
    OverloadRunConfig,
    jain_index,
)
from repro.bench.regress import compare_overload, run_overload_gate

#: A sweep small enough for the test suite but with the same shape:
#: both arms, an under- and over-capacity multiplier, the hog run, and
#: a shrunken scale smoke.
TINY = OverloadRunConfig(horizon=2.5, multipliers=(0.5, 4.0),
                         hog_horizon=1.5, scale_tenants=100,
                         scale_horizon=0.5)


@pytest.fixture
def tiny_sweep(monkeypatch):
    """Point ``run_overload_gate`` at the shrunken sweep config."""
    monkeypatch.setattr(e24_overload, "SHORT", TINY)


def test_overload_gate_doc_is_deterministic(tiny_sweep):
    first = run_overload_gate()
    second = run_overload_gate()
    assert first == second


def test_overload_gate_doc_passes_against_itself(tiny_sweep):
    doc = run_overload_gate()
    assert compare_overload(doc, doc) == []
    # The tiny sweep already exhibits the full-size phenomena the gate
    # is built on: protected goodput holds, unprotected collapses, the
    # hog cannot starve polite tenants, and the pass-through is exact.
    assert doc["gated_fraction_at_top"] >= doc["min_gated_fraction"]
    assert doc["none_fraction_at_top"] < doc["max_unprotected_fraction"]
    assert doc["noadmission_identical"]


def test_overload_gate_flags_pinned_count_drift(tiny_sweep):
    baseline = run_overload_gate()
    current = run_overload_gate()
    current["sweep"]["gateway"]["4"]["shed"] += 1
    violations = compare_overload(current, baseline)
    assert len(violations) == 1
    assert "gateway@4x.shed" in violations[0]


def test_overload_gate_flags_fingerprint_drift(tiny_sweep):
    baseline = run_overload_gate()
    current = run_overload_gate()
    current["sweep"]["none"]["0.5"]["per_tenant_fingerprint"] = "beef"
    violations = compare_overload(current, baseline)
    assert len(violations) == 1
    assert "none@0.5x.per_tenant_fingerprint" in violations[0]


# ---------------------------------------------------- compare_overload
def _point(offered=100, ok=80, miss=5, throttled=10, shed=5,
           fingerprint="aaaa"):
    return {"offered": offered, "ok": ok, "deadline_miss": miss,
            "throttled": throttled, "shed": shed,
            "per_tenant_fingerprint": fingerprint}


def _passing_doc():
    return {
        "sweep": {
            "none": {"0.5": _point(), "4": _point(ok=20)},
            "gateway": {"0.5": _point(), "4": _point(fingerprint="cc")},
        },
        "gated_fraction_at_top": 0.95,
        "none_fraction_at_top": 0.25,
        "jain_at_top": 0.99,
        "min_gated_fraction": MIN_GATED_FRACTION,
        "max_unprotected_fraction": MAX_UNPROTECTED_FRACTION,
        "min_jain": MIN_JAIN,
        "hog_none": {"offered": 50, "ok": 30, "hog_ok": 28,
                     "polite_offered": 12, "polite_ok": 2,
                     "polite_goodput": 0.17},
        "hog_gateway": {"offered": 50, "ok": 25, "hog_ok": 13,
                        "polite_offered": 12, "polite_ok": 12,
                        "polite_goodput": 1.0},
        "scale": {"tenants": 100, "offered": 60, "ok": 50,
                  "deadline_miss": 2, "throttled": 5, "shed": 3,
                  "tenants_served": 40},
        "noadmission_fingerprint": "feedface00000000",
        "noadmission_identical": True,
    }


def test_compare_overload_passes_clean_doc():
    assert compare_overload(_passing_doc(), _passing_doc()) == []


def test_compare_overload_flags_gated_collapse():
    current = _passing_doc()
    current["gated_fraction_at_top"] = MIN_GATED_FRACTION - 0.05
    violations = compare_overload(current, _passing_doc())
    assert len(violations) == 1
    assert "gateway holds only" in violations[0]


def test_compare_overload_flags_unprotected_not_collapsing():
    # If the "unprotected" arm stops collapsing, the sweep is no longer
    # exercising overload at all — that is drift, not an improvement.
    current = _passing_doc()
    current["none_fraction_at_top"] = MAX_UNPROTECTED_FRACTION + 0.2
    violations = compare_overload(current, _passing_doc())
    assert len(violations) == 1
    assert "no longer collapses" in violations[0]


def test_compare_overload_flags_unfair_sharing():
    current = _passing_doc()
    current["jain_at_top"] = MIN_JAIN - 0.1
    violations = compare_overload(current, _passing_doc())
    assert len(violations) == 1
    assert "Jain" in violations[0]


def test_compare_overload_pins_hog_counts():
    current = _passing_doc()
    current["hog_gateway"]["polite_ok"] = 11
    violations = compare_overload(current, _passing_doc())
    assert len(violations) == 1
    assert "hog_gateway.polite_ok" in violations[0]


def test_compare_overload_requires_hog_protection():
    current = _passing_doc()
    current["hog_gateway"]["polite_goodput"] = 0.1  # below hog_none
    violations = compare_overload(current, _passing_doc())
    assert len(violations) == 1
    assert "polite tenants" in violations[0]


def test_compare_overload_pins_scale_smoke():
    current = _passing_doc()
    current["scale"]["tenants_served"] = 39
    violations = compare_overload(current, _passing_doc())
    assert len(violations) == 1
    assert "scale.tenants_served" in violations[0]


def test_compare_overload_pins_noadmission_identity():
    current = _passing_doc()
    current["noadmission_fingerprint"] = "0000000000000000"
    violations = compare_overload(current, _passing_doc())
    assert len(violations) == 1
    assert "NoAdmission fingerprint" in violations[0]

    current = _passing_doc()
    current["noadmission_identical"] = False
    violations = compare_overload(current, _passing_doc())
    assert len(violations) == 1
    assert "no longer" in violations[0]


def test_compare_overload_flags_missing_sweep_point():
    current = _passing_doc()
    del current["sweep"]["gateway"]["4"]
    violations = compare_overload(current, _passing_doc())
    # Every pinned field of the vanished point is reported missing.
    assert len(violations) == len(_point())
    assert all("gateway@4x" in v for v in violations)


# --------------------------------------------------------- jain_index
def test_jain_index_properties():
    assert jain_index([]) == 1.0
    assert jain_index([0, 0, 0]) == 1.0
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
    assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
    # Scale-invariant.
    assert jain_index([1, 2, 3]) == pytest.approx(jain_index([10, 20, 30]))
