"""The chaos sub-gate: pinned replay, win conditions, CLI round trip."""

import json

import pytest

from repro.bench.regress import compare_chaos, main, run_chaos_gate


@pytest.fixture(scope="module")
def chaos_doc():
    return run_chaos_gate()


def test_chaos_gate_meets_its_own_bar(chaos_doc):
    """A fresh gate run satisfies its own baseline: exact pins hold,
    the hardened arm wins, nobody blocks past a deadline, hedging cuts
    the gray tail, and the run replays outcome-identically."""
    assert compare_chaos(chaos_doc, chaos_doc) == []
    assert chaos_doc["hardened"]["goodput"] > chaos_doc["naive"]["goodput"]
    assert chaos_doc["hardened"]["max_time_to_outcome_s"] \
        <= chaos_doc["config"]["deadline_s"] + chaos_doc["deadline_eps_s"]
    assert chaos_doc["hedged"]["p99_s"] < chaos_doc["unhedged"]["p99_s"]
    assert chaos_doc["replay_identical"] is True
    assert chaos_doc["naive"]["faults_injected"] > 0


def test_compare_chaos_flags_pinned_count_drift(chaos_doc):
    base = json.loads(json.dumps(chaos_doc))
    base["hardened"]["ok"] += 1
    violations = compare_chaos(chaos_doc, base)
    assert any("hardened.ok" in v for v in violations)


def test_compare_chaos_flags_outcome_fingerprint_drift(chaos_doc):
    base = json.loads(json.dumps(chaos_doc))
    base["naive"]["outcome_fingerprint"] = "0" * 16
    violations = compare_chaos(chaos_doc, base)
    assert any("outcome_fingerprint" in v for v in violations)


def test_compare_chaos_flags_lost_goodput_win(chaos_doc):
    cur = json.loads(json.dumps(chaos_doc))
    cur["hardened"]["goodput"] = cur["naive"]["goodput"]
    assert any("does not beat" in v
               for v in compare_chaos(cur, cur))


def test_compare_chaos_flags_deadline_breach(chaos_doc):
    cur = json.loads(json.dumps(chaos_doc))
    cur["hardened"]["max_time_to_outcome_s"] = \
        cur["config"]["deadline_s"] + 1.0
    assert any("blocked" in v for v in compare_chaos(cur, cur))


def test_compare_chaos_flags_lost_hedge_win(chaos_doc):
    cur = json.loads(json.dumps(chaos_doc))
    cur["hedged"]["p99_s"] = cur["unhedged"]["p99_s"]
    assert any("no longer cuts" in v for v in compare_chaos(cur, cur))


def test_compare_chaos_flags_broken_replay(chaos_doc):
    cur = json.loads(json.dumps(chaos_doc))
    cur["replay_identical"] = False
    assert any("replay" in v for v in compare_chaos(cur, cur))


def test_cli_only_chaos_update_then_compare_and_perturb(tmp_path):
    cb = tmp_path / "chaos.json"
    out = tmp_path / "chaos_out.json"
    assert main(["--only-chaos", "--update",
                 "--chaos-baseline", str(cb)]) == 0
    doc = json.loads(cb.read_text())
    assert doc["hardened"]["goodput"] > doc["naive"]["goodput"]
    assert main(["--only-chaos", "--chaos-baseline", str(cb),
                 "--chaos-out", str(out)]) == 0
    assert json.loads(out.read_text())["replay_identical"] is True

    # Perturb a pinned count: the gate must fail.
    doc["hardened"]["offered"] += 1
    cb.write_text(json.dumps(doc))
    assert main(["--only-chaos", "--chaos-baseline", str(cb)]) == 1


def test_cli_missing_chaos_baseline_is_usage_error(tmp_path):
    assert main(["--only-chaos",
                 "--chaos-baseline", str(tmp_path / "nope.json")]) == 2


def test_cli_rejects_contradictory_flags():
    with pytest.raises(SystemExit):
        main(["--only-chaos", "--skip-chaos"])
