"""The perf-regression gate: layer folding, comparison, CLI."""

import json

import pytest

from repro.bench.regress import (
    ABS_FLOOR,
    compare,
    compare_autoscale,
    fold_layers,
    layer_of,
    main,
    run_autoscale_gate,
    run_pinned_e4,
)


def _baseline(by_layer, **overrides):
    doc = {"by_layer": by_layer, "requests": 10,
           "default_tolerance": 0.15, "abs_floor_s": ABS_FLOOR,
           "tolerances": {}}
    doc.update(overrides)
    return doc


# -- layer folding -------------------------------------------------------

def test_layer_of_known_and_unknown_names():
    assert layer_of("net.transfer") == "network"
    assert layer_of("quorum.write") == "quorum"
    assert layer_of("coldstart") == "coldstart"
    assert layer_of("brand.new.span") == "other"


def test_layer_of_autoscale_spans():
    assert layer_of("autoscale.tick") == "control"
    assert layer_of("autoscale.resize") == "control"
    # Prewarming is provisioning work, so it folds with cold starts.
    assert layer_of("warmpool.prewarm") == "coldstart"


def test_fold_layers_sums_names_into_layers():
    folded = fold_layers({"net.transfer": 1.0, "net.local_copy": 0.5,
                          "compute": 2.0, "mystery": 0.25})
    assert folded == {"compute": 2.0, "network": 1.5, "other": 0.25}


# -- comparator edges ----------------------------------------------------

def test_compare_passes_within_tolerance():
    base = _baseline({"network": 1.0, "compute": 2.0})
    assert compare({"network": 1.1, "compute": 2.2}, base) == []


def test_compare_flags_drift_beyond_tolerance():
    base = _baseline({"network": 1.0})
    violations = compare({"network": 1.2}, base)
    assert len(violations) == 1
    assert "network" in violations[0]
    # Improvements beyond tolerance are flagged too: the baseline is
    # stale either way and must be consciously updated.
    assert compare({"network": 0.7}, base)


def test_compare_per_layer_tolerance_overrides_default():
    base = _baseline({"coldstart": 1.0}, tolerances={"coldstart": 0.5})
    assert compare({"coldstart": 1.4}, base) == []
    assert compare({"coldstart": 1.6}, base)


def test_compare_absolute_floor_ignores_tiny_layers():
    # 40 us of drift on a near-zero layer stays under the floor.
    base = _baseline({"quorum": 0.0})
    assert compare({"quorum": 4e-5}, base) == []
    assert compare({"quorum": 4e-4}, base)


def test_compare_missing_and_new_layers():
    base = _baseline({"network": 1.0, "storage": 0.5})
    # A layer vanishing entirely is a violation...
    assert compare({"network": 1.0}, base)
    # ...as is a substantial brand-new layer.
    violations = compare({"network": 1.0, "storage": 0.5,
                          "other": 0.01}, base)
    assert len(violations) == 1
    assert "other" in violations[0]


# -- pinned run + CLI (one small E4 run, reused) -------------------------

@pytest.fixture(scope="module")
def small_run():
    return run_pinned_e4(requests=1)


def test_pinned_run_produces_layer_totals(small_run):
    _cloud, by_name, by_layer = small_run
    assert by_layer.get("compute", 0) > 0
    assert by_layer.get("network", 0) > 0
    assert by_layer.get("coldstart", 0) > 0
    assert sum(by_layer.values()) == pytest.approx(sum(by_name.values()))


def test_pinned_run_emits_labeled_metrics(small_run):
    cloud, _by_name, _by_layer = small_run
    counters = cloud.metrics.to_json(cloud.sim.now)["counters"]
    assert counters["network.bytes"] > 0
    labeled = [k for k in counters if "{purpose=" in k]
    assert labeled, "expected per-purpose network counters"


def test_cli_update_then_compare_and_perturb(tmp_path):
    baseline = tmp_path / "base.json"
    out = tmp_path / "cp.json"
    metrics = tmp_path / "metrics.json"
    assert main(["--requests", "1", "--skip-chaos", "--skip-attribution",
                 "--skip-throughput",
                 "--update", "--skip-autoscale",
                 "--baseline", str(baseline)]) == 0
    assert main(["--requests", "1", "--skip-chaos", "--skip-attribution",
                 "--skip-throughput",
                 "--skip-autoscale",
                 "--baseline", str(baseline),
                 "--out", str(out), "--metrics-out", str(metrics)]) == 0
    assert json.loads(out.read_text())["by_layer"]
    assert json.loads(metrics.read_text())["counters"]

    # Perturb one layer in the baseline: the gate must fail.
    doc = json.loads(baseline.read_text())
    doc["by_layer"]["network"] *= 2.0
    baseline.write_text(json.dumps(doc))
    assert main(["--requests", "1", "--skip-chaos", "--skip-attribution",
                 "--skip-throughput",
                 "--skip-autoscale",
                 "--baseline", str(baseline)]) == 1


def test_cli_missing_baseline_is_usage_error(tmp_path):
    assert main(["--requests", "1", "--skip-chaos", "--skip-attribution",
                 "--skip-throughput",
                 "--skip-autoscale",
                 "--baseline", str(tmp_path / "nope.json")]) == 2


# -- the autoscale sub-gate ------------------------------------------------

@pytest.fixture(scope="module")
def autoscale_doc():
    return run_autoscale_gate()


def test_autoscale_gate_meets_its_own_bar(autoscale_doc):
    """A fresh gate run satisfies its own baseline: deterministic
    replay, reduction above the floor, both arms back at zero."""
    assert compare_autoscale(autoscale_doc, autoscale_doc) == []
    assert autoscale_doc["cold_start_reduction"] \
        >= autoscale_doc["min_reduction"]
    assert autoscale_doc["controlled"]["cold_starts"] \
        < autoscale_doc["fixed"]["cold_starts"]


def test_compare_autoscale_flags_pinned_field_drift(autoscale_doc):
    base = json.loads(json.dumps(autoscale_doc))
    base["controlled"]["cold_starts"] += 1
    violations = compare_autoscale(autoscale_doc, base)
    assert len(violations) == 1
    assert "controlled.cold_starts" in violations[0]


def test_compare_autoscale_flags_weak_reduction(autoscale_doc):
    cur = json.loads(json.dumps(autoscale_doc))
    cur["cold_start_reduction"] = 0.1
    violations = compare_autoscale(cur, autoscale_doc)
    assert any("below the required" in v for v in violations)


def test_compare_autoscale_flags_pools_that_never_drain(autoscale_doc):
    cur = json.loads(json.dumps(autoscale_doc))
    base = json.loads(json.dumps(autoscale_doc))
    cur["fixed"]["final_size"] = base["fixed"]["final_size"] = 2
    violations = compare_autoscale(cur, base)
    # Pinned fields agree, so the only violation is the drain check.
    assert violations == ["fixed: pool did not scale to zero "
                          "(final_size=2)"]


def test_cli_autoscale_update_then_compare_and_perturb(tmp_path):
    e4 = tmp_path / "e4.json"
    asb = tmp_path / "autoscale.json"
    assert main(["--requests", "1", "--skip-chaos", "--skip-attribution",
                 "--skip-throughput",
                 "--update", "--baseline", str(e4),
                 "--autoscale-baseline", str(asb)]) == 0
    doc = json.loads(asb.read_text())
    assert doc["controlled"]["cold_starts"] < doc["fixed"]["cold_starts"]
    assert main(["--requests", "1", "--skip-chaos", "--skip-attribution",
                 "--skip-throughput",
                 "--baseline", str(e4),
                 "--autoscale-baseline", str(asb)]) == 0

    # Perturb a pinned arm field: the gate must fail.
    doc["controlled"]["cold_starts"] += 5
    asb.write_text(json.dumps(doc))
    assert main(["--requests", "1", "--skip-chaos", "--skip-attribution",
                 "--skip-throughput",
                 "--baseline", str(e4),
                 "--autoscale-baseline", str(asb)]) == 1


def test_cli_missing_autoscale_baseline_is_usage_error(tmp_path):
    e4 = tmp_path / "e4.json"
    assert main(["--requests", "1", "--skip-chaos", "--skip-attribution",
                 "--skip-throughput",
                 "--update", "--skip-autoscale",
                 "--baseline", str(e4)]) == 0
    assert main(["--requests", "1", "--skip-chaos", "--skip-attribution",
                 "--skip-throughput",
                 "--baseline", str(e4),
                 "--autoscale-baseline",
                 str(tmp_path / "nope.json")]) == 2
