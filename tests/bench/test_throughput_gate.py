"""Throughput gate: cross-stack determinism and the comparison rules.

The gate's value rests on two claims that must hold at any workload
size: the live stack and the frozen pre-refactor stack produce
byte-identical fingerprints for the same plan, and ``invoke_many`` is
byte-identical to the serial ``invoke`` loop. These tests pin both on
a shrunken workload (the committed baseline pins them at full size),
plus the ``compare_throughput`` violation rules on fabricated docs.
"""

import pytest

from repro.bench import throughput
from repro.bench.regress import MIN_SPEEDUP, compare_throughput


def _shrink_hot_loop(monkeypatch):
    """Scale the pinned workload down to test size (same shape)."""
    small = {
        "SESSIONS": 4, "SESSION_ITERS": 12, "SESSION_FNS": 3,
        "SESSION_NODES": 3, "FANOUT_PARENTS": 2, "FANOUT_ROUNDS": 2,
        "FANOUT_WIDTH": 10, "TAIL_SESSIONS": 6, "TAIL_ITERS": 4,
        "TAIL_ERROR_EVERY": 3, "SLEEPER_PROCS": 20, "SLEEPER_NAPS": 2,
        "INTERRUPT_PAIRS": 4,
    }
    for name, value in small.items():
        monkeypatch.setattr(throughput, name, value)


def test_current_and_reference_stacks_agree(monkeypatch):
    _shrink_hot_loop(monkeypatch)
    plan = throughput._HotLoopPlan()
    current = throughput.run_hot_loop_bench("current", plan)
    reference = throughput.run_hot_loop_bench("reference", plan)
    # The frozen stack is the behavioral oracle: identical virtual-time
    # outcomes, event counts, and span tallies — only speed may differ.
    assert current["fingerprint"] == reference["fingerprint"]
    assert current["events"] == reference["events"]
    assert current["spans"] == reference["spans"]
    assert current["final_now"] == reference["final_now"]


def test_hot_loop_fingerprint_is_stable_across_runs(monkeypatch):
    _shrink_hot_loop(monkeypatch)
    plan = throughput._HotLoopPlan()
    first = throughput.run_hot_loop_bench("current", plan)
    second = throughput.run_hot_loop_bench("current", plan)
    assert first["fingerprint"] == second["fingerprint"]


def test_invoke_many_matches_serial_loop(monkeypatch):
    monkeypatch.setattr(throughput, "INVOKE_WARMUP", 2)
    monkeypatch.setattr(throughput, "INVOKE_COUNT", 12)
    batched = throughput.run_invoke_bench(serial=False)
    serial = throughput.run_invoke_bench(serial=True)
    assert batched["batched"] is True
    assert serial["batched"] is False
    assert batched["invokes"] == serial["invokes"] == 12
    # Byte-identical placement, latency, cold-start, and counter
    # outcomes: batching is a dispatch optimization, not a semantic one.
    assert batched["fingerprint"] == serial["fingerprint"]
    assert batched["events"] == serial["events"]


def test_run_benchmarks_rejects_bad_repeat():
    with pytest.raises(ValueError):
        throughput.run_benchmarks(repeat=0)


# -------------------------------------------------- compare_throughput
def _passing_doc():
    return {
        "hot_loop_fingerprint": "aaaa", "invoke_fingerprint": "bbbb",
        "min_speedup": 5.0, "speedup": 6.2,
        "batched_matches_serial": True,
    }


def test_compare_throughput_passes_clean_doc():
    assert compare_throughput(_passing_doc(), _passing_doc()) == []


def test_compare_throughput_flags_slow_current():
    current = _passing_doc()
    current["speedup"] = 4.9
    violations = compare_throughput(current, _passing_doc())
    assert len(violations) == 1
    assert "4.90x" in violations[0]


def test_compare_throughput_pins_fingerprints_exactly():
    for fld in ("hot_loop_fingerprint", "invoke_fingerprint"):
        current = _passing_doc()
        current[fld] = "ffff"
        violations = compare_throughput(current, _passing_doc())
        assert len(violations) == 1
        assert fld in violations[0]


def test_compare_throughput_requires_batched_identity():
    current = _passing_doc()
    current["batched_matches_serial"] = False
    violations = compare_throughput(current, _passing_doc())
    assert len(violations) == 1
    assert "invoke_many" in violations[0]


def test_compare_throughput_uses_baseline_bar():
    # The committed baseline's bar wins over the module default.
    current = _passing_doc()
    current["speedup"] = MIN_SPEEDUP + 1.0
    baseline = _passing_doc()
    baseline["min_speedup"] = MIN_SPEEDUP + 2.0
    violations = compare_throughput(current, baseline)
    assert len(violations) == 1
    assert "required >=" in violations[0]
