"""LatencyAttributor folding, the feedback loop, and its invariance."""

import pytest

from repro.bench.attribution import (
    COMPONENTS,
    LatencyAttributor,
    component_of,
)
from repro.cluster.resources import MB, ResourceVector
from repro.core.optimizer import ImplOptimizer
from repro.core.placement import ObservedPlacement, make_policy
from repro.core.system import PCSICloud
from repro.core.functions import FunctionImpl
from repro.faas.platforms import CONTAINER
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.workloads.ml_serving import ModelServingApp, ModelServingConfig


def _feed(sim, tracer, fn="f", impl="i", node="n0",
          comps=(("execute", 0.5),), cold=False):
    """Emit one finished invoke span tree through the tracer."""
    def proc():
        with tracer.span("invoke", fn=fn, client="c") as root:
            root.set(impl=impl, node=node, cold=cold)
            for name, dur in comps:
                with tracer.span(name):
                    yield sim.timeout(dur)
    sim.spawn(proc())
    sim.run()


@pytest.fixture()
def rig():
    sim = Simulator()
    tracer = Tracer(enabled=True).bind(sim)
    att = LatencyAttributor(tracer,
                            node_class_fn=lambda nid: nid.split("-")[0])
    return sim, tracer, att


# -- folding -------------------------------------------------------------

def test_component_mapping_covers_unknowns():
    assert component_of("coldstart") == "coldstart"
    assert component_of("quorum.write") == "quorum"
    assert component_of("net.transfer") == "transfer"
    assert component_of("brand.new.span") == "other"


def test_vector_partitions_invoke_duration(rig):
    sim, tracer, att = rig
    _feed(sim, tracer, node="gpu-n0", cold=True,
          comps=(("coldstart", 1.0), ("net.transfer", 0.25),
                 ("execute", 0.5)))
    vec = att.vector("f", "i")
    assert set(vec) == set(COMPONENTS)
    assert vec["coldstart"] == pytest.approx(1.0)
    assert vec["transfer"] == pytest.approx(0.25)
    assert vec["execute"] == pytest.approx(0.5)
    assert sum(vec.values()) == pytest.approx(1.75)
    # Cold/warm split: the warm path excludes the cold start entirely.
    assert att.warm_latency("f", "i") == pytest.approx(0.75)
    assert att.cold_overhead("f", "i") == pytest.approx(1.0)
    assert att.keys() == [("f", "i", "gpu")]


def test_ema_update_and_counts(rig):
    sim, tracer, att = rig
    _feed(sim, tracer, comps=(("execute", 1.0),))
    _feed(sim, tracer, comps=(("execute", 2.0),))
    # EMA with alpha=0.3 seeded at 1.0: 0.7*1.0 + 0.3*2.0 = 1.3
    assert att.warm_latency("f", "i") == pytest.approx(1.3)
    assert att.samples("f", "i") == 2
    assert att.cold_overhead("f", "i") is None  # never a cold invoke
    assert att.observed_invokes == 2


def test_unplaced_invokes_are_skipped(rig):
    sim, tracer, att = rig

    def proc():
        with tracer.span("invoke", fn="f", client="c"):
            yield sim.timeout(0.1)  # failed before impl/node were set
    sim.spawn(proc())
    sim.run()
    assert att.observed_invokes == 0
    assert att.samples() == 0


def test_node_classes_separate_keys(rig):
    sim, tracer, att = rig
    for _ in range(3):
        _feed(sim, tracer, node="cpu-n0", comps=(("execute", 1.0),))
        _feed(sim, tracer, node="gpu-n0", comps=(("execute", 0.2),))
    assert att.node_classes() == ["cpu", "gpu"]
    assert att.node_class_latency("cpu") == pytest.approx(1.0)
    assert att.node_class_latency("gpu") == pytest.approx(0.2)
    # Merged view weights per-class EMAs by their sample counts.
    assert att.warm_latency("f", "i") == pytest.approx(0.6)


def test_attributor_validates_parameters():
    tracer = Tracer(enabled=True).bind(Simulator())
    with pytest.raises(ValueError):
        LatencyAttributor(tracer, alpha=0.0)
    with pytest.raises(ValueError):
        LatencyAttributor(tracer, min_samples=0)


def test_to_json_shape(rig):
    sim, tracer, att = rig
    _feed(sim, tracer, node="gpu-n0", cold=True,
          comps=(("coldstart", 1.0), ("execute", 0.5)))
    doc = att.to_json()
    assert doc["observed_invokes"] == 1
    key = doc["keys"]["f/i@gpu"]
    assert key["count"] == 1 and key["cold_count"] == 1
    assert key["ema"]["coldstart"] == pytest.approx(1.0)
    assert key["warm_ema_s"] == pytest.approx(0.5)


# -- optimizer feedback --------------------------------------------------

def _impl():
    return FunctionImpl("cpu", CONTAINER,
                        ResourceVector(cpus=1, memory=1024 ** 3),
                        work_ops=5e8)


def test_optimizer_static_mode_ignores_observations(rig):
    sim, tracer, att = rig
    impl = _impl()
    for _ in range(5):
        _feed(sim, tracer, fn="f", impl="cpu", comps=(("execute", 9.0),))
    static = ImplOptimizer()
    fed = ImplOptimizer(observation_mode="static", attributor=att)
    assert fed.estimate(impl, None, fn_name="f").est_latency \
        == static.estimate(impl, None).est_latency


def test_optimizer_ema_mode_guards_then_substitutes(rig):
    sim, tracer, att = rig
    impl = _impl()
    opt = ImplOptimizer(observation_mode="ema", attributor=att,
                        min_samples=3)
    model = ImplOptimizer().estimate(impl, None).est_latency
    _feed(sim, tracer, fn="f", impl="cpu", comps=(("execute", 9.0),))
    # Below the guard: the model estimate stands.
    assert opt.estimate(impl, None, fn_name="f").est_latency == model
    for _ in range(2):
        _feed(sim, tracer, fn="f", impl="cpu", comps=(("execute", 9.0),))
    # At the guard: observed warm EMA plus amortized modeled cold start
    # (no cold invocation was ever observed for this key).
    est = opt.estimate(impl, None, fn_name="f").est_latency
    assert est == pytest.approx(9.0 + impl.platform.cold_start)
    # An unknown function still uses the model (exploration stays safe).
    assert opt.estimate(impl, None, fn_name="other").est_latency == model


def test_optimizer_rejects_ema_without_attributor():
    with pytest.raises(ValueError):
        ImplOptimizer(observation_mode="ema")
    with pytest.raises(ValueError):
        ImplOptimizer(observation_mode="nonsense")


# -- observed placement --------------------------------------------------

def test_observed_placement_follows_measured_best_class():
    sim = Simulator()
    tracer = Tracer(enabled=True).bind(sim)
    cloud = PCSICloud(Simulator(), racks=2, nodes_per_rack=4,
                      gpu_nodes_per_rack=2, seed=3)
    att = LatencyAttributor(tracer, node_class_fn=cloud._node_class)
    policy = ObservedPlacement(cloud.topology, attributor=att)
    resources = ResourceVector(cpus=1, memory=1024 ** 3)
    nodes = policy.candidates(resources, CONTAINER)
    by_class = {cloud._node_class(n.node_id) for n in nodes}
    assert by_class == {"cpu", "gpu"}  # both classes are candidates
    # No evidence yet: identical to colocate (least-loaded fit).
    baseline_pick = make_policy("colocate", cloud.topology).choose(
        nodes, resources, CONTAINER, None)
    assert policy.choose(nodes, resources, CONTAINER, None) \
        is baseline_pick
    # Feed evidence: gpu-class nodes are observed faster.
    gpu_node = next(n.node_id for n in nodes if n.has_device("gpu"))
    cpu_node = next(n.node_id for n in nodes
                    if not n.has_device("gpu"))
    for _ in range(3):
        _feed(sim, tracer, node=gpu_node, comps=(("execute", 2.0),))
        _feed(sim, tracer, node=cpu_node, comps=(("execute", 5.0),))
    pick = policy.choose(nodes, resources, CONTAINER, None)
    assert cloud.topology.node(pick.node_id).has_device("gpu")


# -- invariance: attribution must not perturb the simulation -------------

E4_CFG = ModelServingConfig(upload_nbytes=4 * MB, weights_nbytes=64 * MB)


def _e4_fingerprint(**cloud_kwargs):
    cloud = PCSICloud(racks=4, nodes_per_rack=8, gpu_nodes_per_rack=2,
                      seed=41, placement="colocate", keep_alive=600.0,
                      trace=True, **cloud_kwargs)
    app = ModelServingApp(cloud, E4_CFG)
    client = cloud.client_node()

    def flow():
        for _ in range(3):
            yield from app.serve_one(client)

    cloud.run_process(flow())
    history = [(inv.fn_name, inv.impl_name, inv.executor_node,
                inv.submitted_at, inv.started_at, inv.finished_at)
               for inv in cloud.scheduler.history]
    return cloud.sim.now, history


def test_static_attribution_is_byte_identical_to_seed():
    """Attaching the attributor (static mode) is a pure observer: the
    pinned E4 run replays event-for-event, float-for-float."""
    plain = _e4_fingerprint()
    observed = _e4_fingerprint(attribution=True)
    assert observed == plain


def test_ema_arm_is_deterministic():
    """Two observation-fed E22 runs make identical decisions."""
    from repro.bench.experiments.e22_attribution import run_drift_arm
    first = run_drift_arm("ema")
    second = run_drift_arm("ema")
    assert first["decisions"] == second["decisions"]
    assert first["phase1_latencies"] == second["phase1_latencies"]
    assert first["phase2_latencies"] == second["phase2_latencies"]


def test_attribution_requires_tracing():
    with pytest.raises(ValueError):
        PCSICloud(attribution=True)  # trace defaults to False
