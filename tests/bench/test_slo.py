"""Multi-window burn-rate SLO tracking."""

import math

import pytest

from repro.bench.slo import (
    DEFAULT_WINDOWS,
    BurnRateWindow,
    SLOTarget,
    SLOTracker,
)
from repro.sim.metrics_registry import LabeledMetricsRegistry


#: One small pair for unit tests: 10 s long / 2 s short, burn >= 2x.
WINDOW = BurnRateWindow(long_s=10.0, short_s=2.0, threshold=2.0)


def make_tracker(metrics=None, objective=0.9):
    tracker = SLOTracker(metrics=metrics, windows=(WINDOW,))
    tracker.add_target("serve", threshold_s=0.100, objective=objective)
    return tracker


# -- validation -------------------------------------------------------------

def test_window_validation():
    with pytest.raises(ValueError):
        BurnRateWindow(long_s=0.0, short_s=1.0, threshold=1.0)
    with pytest.raises(ValueError):
        BurnRateWindow(long_s=1.0, short_s=2.0, threshold=1.0)
    with pytest.raises(ValueError):
        BurnRateWindow(long_s=2.0, short_s=1.0, threshold=0.0)


def test_target_validation_and_budget():
    with pytest.raises(ValueError):
        SLOTarget(key="k", threshold_s=0.0)
    with pytest.raises(ValueError):
        SLOTarget(key="k", threshold_s=0.1, objective=1.0)
    assert SLOTarget(key="k", threshold_s=0.1,
                     objective=0.99).budget == pytest.approx(0.01)


def test_tracker_requires_a_window():
    with pytest.raises(ValueError):
        SLOTracker(windows=())


def test_default_windows_are_the_scaled_sre_pairs():
    assert [w.threshold for w in DEFAULT_WINDOWS] == [14.4, 6.0]
    for w in DEFAULT_WINDOWS:
        assert w.long_s / w.short_s == pytest.approx(12.0)


# -- recording and queries --------------------------------------------------

def test_record_classifies_by_threshold_and_explicit_ok():
    tracker = make_tracker()
    tracker.record("serve", 0.050, now=1.0)        # good: under 100 ms
    tracker.record("serve", 0.500, now=2.0)        # bad: over
    tracker.record("serve", 0.050, now=3.0, ok=False)  # bad: error
    assert tracker.attainment("serve") == pytest.approx(1 / 3)


def test_unknown_keys_are_ignored():
    tracker = make_tracker()
    tracker.record("untracked", 9.9, now=1.0)
    assert tracker.attainment("untracked") is None
    assert tracker.alert_count() == 0


def test_attainment_is_none_before_traffic():
    assert make_tracker().attainment("serve") is None


def test_burn_rate_is_bad_fraction_over_budget():
    tracker = make_tracker(objective=0.9)  # budget 0.1
    for i in range(8):
        tracker.record("serve", 0.050, now=float(i))
    tracker.record("serve", 0.500, now=8.0)
    tracker.record("serve", 0.500, now=9.0)
    # 2 bad / 10 total = 0.2 bad fraction; over a 0.1 budget -> 2.0.
    assert tracker.burn_rate("serve", 10.0, now=9.0) == pytest.approx(2.0)
    assert tracker.burn_rate("serve", 10.0, now=200.0) == 0.0  # empty
    assert tracker.burn_rate("nope", 10.0, now=9.0) == 0.0


def test_events_are_pruned_to_the_longest_window():
    tracker = make_tracker()
    for i in range(100):
        tracker.record("serve", 0.050, now=float(i))
    state = tracker._keys["serve"]
    assert len(state.events) <= 12  # 10 s window + the new event
    assert state.total == 100  # lifetime counts survive pruning


# -- alerting ---------------------------------------------------------------

def test_alert_needs_both_windows_hot():
    tracker = make_tracker(objective=0.9)
    # Old burst of badness: hot in the 10 s window but the 2 s short
    # window has cooled off -> no page.
    for i in range(5):
        tracker.record("serve", 0.500, now=0.1 * i)
    tracker.record("serve", 0.050, now=5.0)
    tracker.record("serve", 0.050, now=6.0)
    before = tracker.alert_count("serve")
    tracker.record("serve", 0.050, now=7.0)
    assert tracker.alert_count("serve") == before


def test_alert_fires_once_per_rising_edge():
    tracker = make_tracker(objective=0.9)
    for i in range(10):
        tracker.record("serve", 0.500, now=0.2 * i)
    assert tracker.alert_count("serve") == 1  # latched while firing
    alert = tracker.alerts[0]
    assert alert.key == "serve"
    assert alert.long_burn >= WINDOW.threshold
    assert alert.short_burn >= WINDOW.threshold
    # Recover, then relapse: a second rising edge, a second alert.
    for i in range(60):
        tracker.record("serve", 0.050, now=2.0 + 0.2 * i)
    assert tracker.alert_count("serve") == 1
    for i in range(10):
        tracker.record("serve", 0.500, now=20.0 + 0.2 * i)
    assert tracker.alert_count("serve") == 2


def test_metrics_emission():
    reg = LabeledMetricsRegistry()
    tracker = make_tracker(metrics=reg, objective=0.9)
    for i in range(10):
        tracker.record("serve", 0.500, now=0.2 * i)
    assert reg.gauge("slo.burn_rate", key="serve",
                     window=10).level >= WINDOW.threshold
    assert reg.counter("slo.alerts", key="serve", window=10).value == 1


# -- export -----------------------------------------------------------------

def test_to_json_snapshot():
    tracker = make_tracker(objective=0.9)
    for i in range(10):
        tracker.record("serve", 0.500, now=0.2 * i)
    doc = tracker.to_json(now=2.0)
    serve = doc["keys"]["serve"]
    assert serve["total"] == 10
    assert serve["bad"] == 10
    assert serve["attainment"] == 0.0
    assert serve["burn_rates"]["10"] >= WINDOW.threshold
    assert doc["alerts"][0]["threshold"] == WINDOW.threshold
    assert not math.isnan(doc["alerts"][0]["time_s"])
