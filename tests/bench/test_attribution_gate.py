"""The attribution sub-gate: pinned E22 drift replay and its CLI."""

import json

import pytest

from repro.bench.regress import (
    attribution_baseline_path,
    compare_attribution,
    main,
    run_attribution_gate,
)


@pytest.fixture(scope="module")
def attribution_doc():
    return run_attribution_gate()


def test_gate_meets_its_own_bar(attribution_doc):
    """A fresh gate run satisfies its own baseline and win conditions."""
    assert compare_attribution(attribution_doc, attribution_doc) == []
    assert attribution_doc["gap_closed"] \
        >= attribution_doc["min_gap_closed"]
    assert attribution_doc["ema"]["phase2_mean_s"] \
        < attribution_doc["static"]["phase2_mean_s"]
    assert attribution_doc["static"]["phase2_all_npu"]
    assert attribution_doc["static"]["phase1_all_npu"]
    assert attribution_doc["ema"]["phase1_all_npu"]


def test_gate_matches_checked_in_baseline(attribution_doc):
    """The repo baseline is fresh: a clean checkout replays it exactly."""
    baseline = json.loads(
        attribution_baseline_path().read_text(encoding="utf-8"))
    assert compare_attribution(attribution_doc, baseline) == []


def test_compare_flags_decision_drift(attribution_doc):
    base = json.loads(json.dumps(attribution_doc))
    base["ema"]["decision_fingerprint"] = "0" * 16
    violations = compare_attribution(attribution_doc, base)
    assert len(violations) == 1
    assert "ema.decision_fingerprint" in violations[0]


def test_compare_flags_latency_drift(attribution_doc):
    base = json.loads(json.dumps(attribution_doc))
    base["forced_gpu"]["latency_fingerprint"] = "0" * 16
    assert any("forced_gpu.latency_fingerprint" in v
               for v in compare_attribution(attribution_doc, base))


def test_compare_flags_weak_gap(attribution_doc):
    cur = json.loads(json.dumps(attribution_doc))
    cur["gap_closed"] = 0.1
    assert any("below the required" in v
               for v in compare_attribution(cur, attribution_doc))


def test_compare_flags_slow_or_absent_migration(attribution_doc):
    cur = json.loads(json.dumps(attribution_doc))
    cur["ema_flip_index"] = None
    assert any("migrated" in v
               for v in compare_attribution(cur, attribution_doc))


def test_compare_flags_static_arm_leaving_npu(attribution_doc):
    cur = json.loads(json.dumps(attribution_doc))
    cur["static"]["phase2_all_npu"] = False
    assert any("open-loop failure" in v
               for v in compare_attribution(cur, attribution_doc))


def test_cli_only_attribution_update_then_compare_and_perturb(tmp_path):
    ab = tmp_path / "attribution.json"
    out = tmp_path / "attribution_out.json"
    assert main(["--only-attribution", "--update",
                 "--attribution-baseline", str(ab)]) == 0
    doc = json.loads(ab.read_text())
    assert doc["gap_closed"] >= doc["min_gap_closed"]
    assert main(["--only-attribution",
                 "--attribution-baseline", str(ab),
                 "--attribution-out", str(out)]) == 0
    assert json.loads(out.read_text())["ema"]["decision_fingerprint"]

    # Perturb a pinned fingerprint: the gate must fail.
    doc["static"]["decision_fingerprint"] = "f" * 16
    ab.write_text(json.dumps(doc))
    assert main(["--only-attribution",
                 "--attribution-baseline", str(ab)]) == 1


def test_cli_missing_attribution_baseline_is_usage_error(tmp_path):
    assert main(["--only-attribution",
                 "--attribution-baseline",
                 str(tmp_path / "nope.json")]) == 2


def test_cli_only_and_skip_attribution_are_exclusive():
    with pytest.raises(SystemExit):
        main(["--only-attribution", "--skip-attribution"])
    with pytest.raises(SystemExit):
        main(["--only-attribution", "--only-chaos"])
