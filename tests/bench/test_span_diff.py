"""Diffing two runs' critical-path totals."""

import json

import pytest

from repro.bench.span_diff import diff_totals, main, render_diff


def test_diff_rows_sorted_by_absolute_delta():
    rows = diff_totals({"a": 1.0, "b": 2.0, "gone": 0.3},
                       {"a": 1.05, "b": 1.0, "new": 0.2})
    assert [r.name for r in rows] == ["b", "gone", "new", "a"]
    by_name = {r.name: r for r in rows}
    assert by_name["b"].delta == -1.0
    assert by_name["gone"].after == 0.0
    assert by_name["new"].before == 0.0
    assert by_name["new"].pct is None  # relative change undefined
    assert by_name["a"].pct == pytest.approx(0.05)


def test_render_diff_marks_new_gone_and_residual():
    rows = diff_totals({"gone": 0.5, "tiny": 0.001},
                       {"new": 0.25, "tiny": 0.0010001})
    text = render_diff(rows, min_delta=1e-6)
    assert "new" in text and "gone" in text
    assert "residual" in text  # the sub-threshold "tiny" row


def test_identical_runs_have_no_changes():
    rows = diff_totals({"a": 1.0}, {"a": 1.0})
    assert all(r.delta == 0.0 for r in rows)


def test_cli_accepts_regress_artifacts_and_flat_dicts(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    # A regress-style artifact and a plain name->seconds dict.
    a.write_text(json.dumps(
        {"by_name": {"net.transfer": 0.010, "compute": 0.100}}))
    b.write_text(json.dumps({"net.transfer": 0.020, "compute": 0.100}))
    assert main([str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "net.transfer" in out
    assert "per-layer totals" in out
    assert "network" in out


def test_cli_rejects_malformed_input(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"nested": {"not": "numbers"}}))
    ok = tmp_path / "ok.json"
    ok.write_text(json.dumps({"a": 1.0}))
    assert main([str(bad), str(ok)]) == 2
    assert main([str(tmp_path / "missing.json"), str(ok)]) == 2
