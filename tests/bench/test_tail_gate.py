"""The tail sub-gate: pinned E26 drift replay and its CLI."""

import json

import pytest

from repro.bench.regress import (
    compare_tail,
    main,
    run_tail_gate,
    tail_baseline_path,
)


@pytest.fixture(scope="module")
def tail_doc():
    return run_tail_gate()


def test_gate_meets_its_own_bar(tail_doc):
    """A fresh gate run satisfies its own baseline and win conditions."""
    assert compare_tail(tail_doc, tail_doc) == []
    assert tail_doc["p99"]["flip_index"] is not None
    assert tail_doc["mean"]["stuck_on_bimodal"]
    assert tail_doc["hedge_adaptive"]["p99_s"] \
        < tail_doc["hedge_fixed"]["p99_s"]
    assert tail_doc["hedge_adaptive"]["launch_fraction"] \
        <= tail_doc["max_hedge_overhead"]
    assert tail_doc["sketch_rel_err"] <= tail_doc["max_sketch_rel_err"]


def test_gate_matches_checked_in_baseline(tail_doc):
    """The repo baseline is fresh: a clean checkout replays it exactly."""
    baseline = json.loads(
        tail_baseline_path().read_text(encoding="utf-8"))
    assert compare_tail(tail_doc, baseline) == []


def test_compare_flags_decision_drift(tail_doc):
    base = json.loads(json.dumps(tail_doc))
    base["p99"]["decision_fingerprint"] = "0" * 16
    violations = compare_tail(tail_doc, base)
    assert len(violations) == 1
    assert "p99.decision_fingerprint" in violations[0]


def test_compare_flags_latency_drift(tail_doc):
    base = json.loads(json.dumps(tail_doc))
    base["hedge_adaptive"]["latency_fingerprint"] = "0" * 16
    assert any("hedge_adaptive.latency_fingerprint" in v
               for v in compare_tail(tail_doc, base))


def test_compare_flags_missing_flip(tail_doc):
    cur = json.loads(json.dumps(tail_doc))
    cur["p99"]["flip_index"] = None
    assert any("never flipped" in v for v in compare_tail(cur, tail_doc))


def test_compare_flags_unstuck_mean_arm(tail_doc):
    cur = json.loads(json.dumps(tail_doc))
    cur["mean"]["stuck_on_bimodal"] = False
    assert any("mean-steered arm" in v
               for v in compare_tail(cur, tail_doc))


def test_compare_flags_weak_adaptive_hedge(tail_doc):
    cur = json.loads(json.dumps(tail_doc))
    cur["hedge_adaptive"]["p99_s"] = cur["hedge_fixed"]["p99_s"] + 1.0
    assert any("hedging no longer beats" in v
               for v in compare_tail(cur, tail_doc))


def test_compare_flags_hedge_overhead_blowout(tail_doc):
    cur = json.loads(json.dumps(tail_doc))
    cur["hedge_adaptive"]["launch_fraction"] = \
        cur["max_hedge_overhead"] + 0.01
    assert any("launch" in v for v in compare_tail(cur, tail_doc))


def test_compare_flags_sketch_accuracy_regression(tail_doc):
    cur = json.loads(json.dumps(tail_doc))
    cur["sketch_rel_err"] = cur["max_sketch_rel_err"] + 0.01
    assert any("sketch" in v for v in compare_tail(cur, tail_doc))


def test_cli_only_tail_update_then_compare_and_perturb(tmp_path):
    tb = tmp_path / "tail.json"
    out = tmp_path / "tail_out.json"
    assert main(["--only-tail", "--update",
                 "--tail-baseline", str(tb)]) == 0
    doc = json.loads(tb.read_text())
    assert doc["p99"]["flip_index"] is not None
    assert main(["--only-tail", "--tail-baseline", str(tb),
                 "--tail-out", str(out)]) == 0
    assert json.loads(out.read_text())["p99"]["decision_fingerprint"]

    # Perturb a pinned fingerprint: the gate must fail.
    doc["mean"]["latency_fingerprint"] = "f" * 16
    tb.write_text(json.dumps(doc))
    assert main(["--only-tail", "--tail-baseline", str(tb)]) == 1


def test_cli_missing_tail_baseline_is_usage_error(tmp_path):
    assert main(["--only-tail",
                 "--tail-baseline", str(tmp_path / "nope.json")]) == 2


def test_cli_only_and_skip_tail_are_exclusive():
    with pytest.raises(SystemExit):
        main(["--only-tail", "--skip-tail"])
    with pytest.raises(SystemExit):
        main(["--only-tail", "--only-attribution"])
