"""Tests for the trace-span timeline renderer."""

import pytest

from repro.bench import render_timeline, span_summary
from repro.cluster import cpu_task
from repro.core import FunctionImpl, PCSICloud
from repro.faas import WASM
from repro.sim import Tracer


def traced_cloud():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=44, trace=True)
    fn = cloud.define_function(
        "work", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=1e9)])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)
        yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    return cloud


def test_render_contains_rows_and_bars():
    cloud = traced_cloud()
    chart = render_timeline(cloud.tracer)
    lines = chart.split("\n")
    assert len(lines) == 3  # header + 2 spans
    assert "work/wasm@" in lines[1]
    assert "COLD" in lines[1]
    assert "COLD" not in lines[2]
    assert "#" in lines[1] and "[" in lines[1]


def test_render_empty_tracer():
    assert "no invocation spans" in render_timeline(Tracer())


def test_render_label_filter():
    cloud = traced_cloud()
    assert "no invocation spans" in render_timeline(cloud.tracer,
                                                    label="other")
    chart = render_timeline(cloud.tracer, label="work")
    assert chart.count("work/") == 2


def test_render_width_validation():
    with pytest.raises(ValueError):
        render_timeline(Tracer(), width=5)


def test_render_truncates_rows():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=44, trace=True)
    fn = cloud.define_function(
        "w", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=1e7)])
    client = cloud.client_node()

    def flow():
        for _ in range(6):
            yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    chart = render_timeline(cloud.tracer, max_rows=3)
    assert "3 more spans" in chart


def test_span_summary():
    cloud = traced_cloud()
    summary = span_summary(cloud.tracer)
    assert summary["work"]["count"] == 2
    assert summary["work"]["cold"] == 1
    assert summary["work"]["busy_s"] > 0
