"""Tests for critical-path extraction and the Chrome trace export."""

import json

import pytest

from repro.bench import (
    critical_path,
    invocation_critical_paths,
    merged_by_name,
)
from repro.cluster import cpu_task
from repro.core import FunctionImpl, PCSICloud
from repro.faas import WASM
from repro.sim import Tracer


# ------------------------------------------------------------- synthetic
class Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def build_synthetic():
    """root [0,10] with child a [1,4], child b [6,9]; 4s of self time."""
    clk = Clock()
    tracer = Tracer(enabled=True, clock=clk)
    root = tracer.start_span("root")
    clk.t = 1.0
    a = tracer.start_span("a", parent=root)
    clk.t = 4.0
    tracer.end_span(a)
    clk.t = 6.0
    b = tracer.start_span("b", parent=root)
    clk.t = 9.0
    tracer.end_span(b)
    clk.t = 10.0
    tracer.end_span(root)
    return tracer, root


def test_synthetic_attribution_exact():
    tracer, root = build_synthetic()
    report = critical_path(tracer, root)
    by_name = report.by_name()
    assert by_name["root"] == pytest.approx(4.0)  # 0-1, 4-6, 9-10
    assert by_name["a"] == pytest.approx(3.0)
    assert by_name["b"] == pytest.approx(3.0)
    assert sum(s.contribution for s in report.segments) \
        == pytest.approx(report.total)


def test_parallel_children_charge_only_blocking_time():
    """Two children covering the same window must not double-count."""
    clk = Clock()
    tracer = Tracer(enabled=True, clock=clk)
    root = tracer.start_span("root")
    fast = tracer.start_span("fast", parent=root)
    slow = tracer.start_span("slow", parent=root)
    clk.t = 2.0
    tracer.end_span(fast)
    clk.t = 5.0
    tracer.end_span(slow)
    tracer.end_span(root)
    report = critical_path(tracer, root)
    total = sum(s.contribution for s in report.segments)
    assert total == pytest.approx(5.0)
    # The slower replica dominates; the faster one only gets the
    # window the slow one doesn't cover going backwards (none here).
    assert report.by_name()["slow"] == pytest.approx(5.0)
    assert "fast" not in report.by_name()


def test_segments_ordered_and_disjoint():
    tracer, root = build_synthetic()
    report = critical_path(tracer, root)
    for prev, cur in zip(report.segments, report.segments[1:]):
        assert prev.end <= cur.start + 1e-12
    assert report.segments[0].start == pytest.approx(root.start)
    assert report.segments[-1].end == pytest.approx(root.end)


def test_empty_tracer_raises():
    with pytest.raises(ValueError):
        critical_path(Tracer(enabled=True))


# ------------------------------------------------------------- end-to-end
@pytest.fixture(scope="module")
def traced_cloud():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=91, trace=True)
    fn = cloud.define_function(
        "work", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=2e8)])
    client = cloud.client_node()

    def flow():
        for _ in range(3):
            yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    cloud.run()
    return cloud


def test_invocation_critical_paths_sum_to_latency(traced_cloud):
    tracer = traced_cloud.tracer
    reports = invocation_critical_paths(tracer)
    assert len(reports) == 3
    records = tracer.select("invoke.span")
    for report, record in zip(reports, records):
        attributed = sum(s.contribution for s in report.segments)
        # Acceptance bar: within 1% of the end-to-end latency. The
        # construction guarantees exact, so this is a loose check.
        assert attributed == pytest.approx(report.total, rel=1e-9)
        # The root span covers the full client-observed window:
        # dispatch + attempt + result return. The legacy latency field
        # starts at submission, so the span is a strict superset.
        assert record.payload["latency"] <= report.total \
            <= 2 * record.payload["latency"]


def test_cold_start_dominates_first_invocation(traced_cloud):
    reports = invocation_critical_paths(traced_cloud.tracer)
    first = reports[0].by_name()
    assert "sandbox.provision" in first
    # Cold start is a major contributor to invocation #1 (a 5 ms
    # provision against a ~6 ms compute).
    assert first["sandbox.provision"] > 0.25 * reports[0].total
    # Warm invocations never pay it.
    assert "sandbox.provision" not in reports[1].by_name()


def test_report_render_and_merge(traced_cloud):
    reports = invocation_critical_paths(traced_cloud.tracer)
    text = reports[0].render()
    assert "critical path of 'invoke'" in text
    assert "sandbox.provision" in text
    merged = merged_by_name(reports)
    # Execution time lands on the leaf "compute" span, not "execute",
    # because attribution always charges the deepest covering span.
    assert merged["compute"] > 0
    assert list(merged.values()) == sorted(merged.values(), reverse=True)


# ------------------------------------------------------------- chrome json
def test_chrome_trace_export_is_valid(traced_cloud, tmp_path):
    tracer = traced_cloud.tracer
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert len(events) == tracer.span_count
    ids = set()
    for ev in events:
        assert ev["ph"] == "X"
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert isinstance(ev["name"], str) and ev["name"]
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        ids.add(ev["args"]["span_id"])
        parent = ev["args"].get("parent_id")
        if parent is not None:
            assert tracer.get_span(parent) is not None
    assert len(ids) == len(events)
    # Each invocation renders on its own track (tid = root span id).
    roots = {tracer.root_of(s).span_id for s in tracer.spans()}
    assert {ev["tid"] for ev in events} == roots
