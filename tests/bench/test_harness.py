"""Tests for the benchmark harness plumbing (tables, results, CLI)."""

import pytest

from repro.bench import (
    ExperimentResult,
    fmt_bytes,
    fmt_ms,
    fmt_ns,
    fmt_us,
    fmt_usd_per_million,
    format_table,
)
from repro.bench.__main__ import main as bench_main


def test_format_table_alignment():
    out = format_table(("name", "value"),
                       [("a", 1), ("long-name", 22.5)], title="T")
    lines = out.split("\n")
    assert lines[0] == "T"
    assert lines[1].startswith("name")
    assert "long-name" in lines[4]
    # Columns align: "value" header and the numbers share a column.
    col = lines[1].index("value")
    assert lines[3][col] in "0123456789"


def test_format_table_validation():
    with pytest.raises(ValueError):
        format_table((), [])
    with pytest.raises(ValueError):
        format_table(("a", "b"), [("only-one",)])


def test_formatters():
    assert fmt_ns(1e-6) == "1,000 ns"
    assert fmt_us(2.5e-4) == "250.0 us"
    assert fmt_ms(0.0125) == "12.50 ms"
    assert fmt_usd_per_million(0.18) == "0.1800 USD/M"
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(4 * 1024) == "4.0 KB"
    assert fmt_bytes(3 * 1024 ** 2) == "3.0 MB"
    assert fmt_bytes(2 * 1024 ** 3) == "2.0 GB"


def test_experiment_result_render():
    result = ExperimentResult(
        experiment_id="EX", title="demo",
        headers=("a", "b"), rows=[(1, 2)],
        claims={"ok": True}, notes=["a note"])
    text = result.render()
    assert "[EX] demo" in text
    assert "note: a note" in text


def test_cli_rejects_unknown_experiment(capsys):
    assert bench_main(["E999"]) == 2
    out = capsys.readouterr().out
    assert "unknown experiments" in out


def test_cli_runs_selected_experiment(capsys):
    assert bench_main(["E1"]) == 0
    out = capsys.readouterr().out
    assert "[E1]" in out
    assert "WebAssembly call" in out
