"""Tests for invocation trace spans."""

from repro.cluster import cpu_task
from repro.core import FunctionImpl, PCSICloud
from repro.faas import WASM


def test_invoke_spans_recorded_when_tracing():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=66, trace=True)
    fn = cloud.define_function(
        "traced", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=1e8)])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)
        yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    spans = cloud.tracer.select("invoke.span")
    assert len(spans) == 2
    first, second = spans
    assert first.payload["fn"] == "traced"
    assert first.payload["cold"] is True
    assert second.payload["cold"] is False
    assert first.payload["latency"] >= first.payload["service"] > 0
    assert first.payload["node"] in {n.node_id
                                     for n in cloud.topology.nodes}


def test_tracing_off_by_default():
    cloud = PCSICloud(racks=2, nodes_per_rack=2, gpu_nodes_per_rack=0,
                      seed=66)
    fn = cloud.define_function(
        "quiet", [FunctionImpl("wasm", WASM, cpu_task())])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    assert len(cloud.tracer) == 0
