"""Tests for invocation trace spans."""

from repro.cluster import cpu_task
from repro.core import FunctionImpl, Intermediate, PCSICloud, TaskGraph
from repro.faas import WASM
from repro.sim import NULL_SPAN


def test_invoke_spans_recorded_when_tracing():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=66, trace=True)
    fn = cloud.define_function(
        "traced", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=1e8)])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)
        yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    spans = cloud.tracer.select("invoke.span")
    assert len(spans) == 2
    first, second = spans
    assert first.payload["fn"] == "traced"
    assert first.payload["cold"] is True
    assert second.payload["cold"] is False
    assert first.payload["latency"] >= first.payload["service"] > 0
    assert first.payload["node"] in {n.node_id
                                     for n in cloud.topology.nodes}


def test_tracing_off_by_default():
    cloud = PCSICloud(racks=2, nodes_per_rack=2, gpu_nodes_per_rack=0,
                      seed=66)
    fn = cloud.define_function(
        "quiet", [FunctionImpl("wasm", WASM, cpu_task())])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    assert len(cloud.tracer) == 0


def _pipeline_graph(cloud):
    """A two-stage produce/consume graph (E4's shape, scaled down)."""
    produce = cloud.define_function(
        "produce", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=1e8)],
        writes=["out"], output_nbytes=4096)
    consume = cloud.define_function(
        "consume", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=1e8)],
        reads=["in"], output_nbytes=0)
    g = TaskGraph("pipeline")
    mid = Intermediate("mid", nbytes_hint=4096)
    g.add_stage("produce", produce, args={"out": mid})
    g.add_stage("consume", consume, args={"in": mid})
    g.link("produce", "consume")
    return g


def run_traced_pipeline(trace):
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=66, trace=trace)
    g = _pipeline_graph(cloud)
    client = cloud.client_node()

    def flow():
        result = yield from cloud.submit_graph(client, g)
        return result

    result = cloud.run_process(flow())
    cloud.run()  # drain reapers / background propagation
    return cloud, result


def test_pipeline_span_tree_has_deep_nesting():
    cloud, _result = run_traced_pipeline(trace=True)
    tracer = cloud.tracer
    roots = tracer.roots()
    graph_roots = [s for s in roots if s.name == "graph"]
    assert len(graph_roots) == 1
    # graph -> invoke -> attempt -> execute (and deeper): ISSUE requires
    # at least 3 levels of children below the root.
    assert tracer.depth_of(graph_roots[0]) >= 3
    names = {s.name for s in tracer.walk(graph_roots[0])}
    assert {"graph", "invoke", "attempt", "placement",
            "execute"} <= names
    # The cold start chain shows up under the first invocation.
    assert tracer.spans(name="coldstart")
    assert tracer.spans(name="sandbox.provision")


def test_pipeline_span_nesting_invariants():
    cloud, _result = run_traced_pipeline(trace=True)
    tracer = cloud.tracer
    seen = set()
    for span in tracer.spans():
        assert span.span_id not in seen
        seen.add(span.span_id)
        assert span.finished, f"span {span.name!r} never ended"
        assert span.end >= span.start
        if span.parent_id is not None:
            parent = tracer.get_span(span.parent_id)
            assert parent is not None
            # Child intervals nest within their parent's.
            assert parent.start <= span.start
            assert span.end <= parent.end, \
                f"{span.name} outlives parent {parent.name}"
        assert span.status == "ok"


def test_pipeline_storage_and_network_spans_linked():
    cloud, _result = run_traced_pipeline(trace=True)
    tracer = cloud.tracer
    # Storage ops carry their consistency level and parent into the tree.
    writes = tracer.spans(name="data.write")
    assert writes
    assert all("consistency" in s.attributes or
               s.attributes.get("ephemeral") for s in writes)
    transfers = tracer.spans(name="net.transfer")
    assert transfers
    assert all(t.parent_id is not None for t in transfers)
    # Compat shim: flat selects still see the same traffic.
    assert tracer.sum_field("net.transfer", "nbytes") > 0
    assert len(tracer.select("invoke.span")) == 2


def test_disabled_tracer_allocates_nothing_during_pipeline():
    cloud, result = run_traced_pipeline(trace=False)
    assert result.latency > 0  # the run itself worked
    tracer = cloud.tracer
    assert tracer.span_count == 0
    assert len(tracer) == 0
    assert tracer.span("probe") is NULL_SPAN
