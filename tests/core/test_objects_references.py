"""Tests for the object table and reference manager."""

import pytest

from repro.core import (
    ObjectKind,
    ObjectNotFoundError,
    ObjectTable,
    ObjectTypeError,
    PCSIObject,
    ReferenceManager,
)
from repro.security import AccessDeniedError, Right


def make_table_with(kind=ObjectKind.REGULAR):
    table = ObjectTable()
    obj = PCSIObject(object_id=table.new_id(), kind=kind)
    table.insert(obj)
    return table, obj


def test_object_table_ids_unique():
    table = ObjectTable()
    ids = {table.new_id() for _ in range(100)}
    assert len(ids) == 100


def test_object_table_insert_get_remove():
    table, obj = make_table_with()
    assert table.get(obj.object_id) is obj
    assert obj.object_id in table
    assert len(table) == 1
    assert table.remove(obj.object_id) is obj
    assert table.get(obj.object_id) is None


def test_duplicate_insert_rejected():
    table, obj = make_table_with()
    with pytest.raises(ValueError):
        table.insert(obj)


def test_require_kind():
    table, obj = make_table_with(ObjectKind.REGULAR)
    assert obj.require_kind(ObjectKind.REGULAR) is obj
    with pytest.raises(ObjectTypeError):
        obj.require_kind(ObjectKind.DIRECTORY)


def test_is_union_only_with_layers():
    table, d = make_table_with(ObjectKind.DIRECTORY)
    assert d.is_directory and not d.is_union
    d.lower_layers = ["other"]
    assert d.is_union


# --------------------------------------------------------- ReferenceManager
def test_mint_requires_existing_object():
    table, obj = make_table_with()
    refs = ReferenceManager(table)
    ref = refs.mint(obj.object_id, Right.READ)
    assert ref.object_id == obj.object_id
    with pytest.raises(ObjectNotFoundError):
        refs.mint("ghost")


def test_check_rights_and_existence():
    table, obj = make_table_with()
    refs = ReferenceManager(table)
    ref = refs.mint(obj.object_id, Right.READ)
    refs.check(ref, Right.READ)
    with pytest.raises(AccessDeniedError):
        refs.check(ref, Right.WRITE)
    table.remove(obj.object_id)
    with pytest.raises(ObjectNotFoundError):
        refs.check(ref, Right.READ)


def test_revocation_through_manager():
    table, obj = make_table_with()
    refs = ReferenceManager(table)
    ref = refs.mint(obj.object_id, Right.READ | Right.MINT)
    child = ref.attenuate(Right.READ)
    refs.revoke(ref)
    with pytest.raises(AccessDeniedError):
        refs.check(child, Right.READ)


def test_roots_management():
    table, obj = make_table_with(ObjectKind.DIRECTORY)
    refs = ReferenceManager(table)
    refs.add_root(obj.object_id)
    assert obj.object_id in refs.roots
    refs.remove_root(obj.object_id)
    assert obj.object_id not in refs.roots
    with pytest.raises(ObjectNotFoundError):
        refs.add_root("ghost")


def test_pinning_counts():
    table, obj = make_table_with()
    refs = ReferenceManager(table)
    refs.pin(obj.object_id)
    refs.pin(obj.object_id)
    assert obj.object_id in refs.pinned
    refs.unpin(obj.object_id)
    assert obj.object_id in refs.pinned  # still one pin left
    refs.unpin(obj.object_id)
    assert obj.object_id not in refs.pinned
    with pytest.raises(ValueError):
        refs.unpin(obj.object_id)


def test_gc_roots_union_of_roots_and_pins():
    table = ObjectTable()
    d = PCSIObject(object_id=table.new_id(), kind=ObjectKind.DIRECTORY)
    f = PCSIObject(object_id=table.new_id(), kind=ObjectKind.REGULAR)
    table.insert(d)
    table.insert(f)
    refs = ReferenceManager(table)
    refs.add_root(d.object_id)
    refs.pin(f.object_id)
    assert refs.gc_roots() == sorted([d.object_id, f.object_id])
