"""Integration tests for the health plane's end-to-end behaviors.

Everything here drives a real :class:`PCSICloud` with ``health`` on
(8 single-CPU nodes, seed 73 — deterministic: the first dispatch of
any function lands on ``rack0-n0``) and checks the contracts the
tentpole promises: orphaned invokes are re-dispatched and recovered,
completions dedup by idempotency key, open breakers fail retries fast
and shed at the gateway, and quarantined nodes are skipped by the warm
pool.
"""

import pytest

from repro.cluster.failures import FailureInjector
from repro.cluster.health import CircuitOpenError, HealthConfig
from repro.cluster.resources import cpu_task, server_node
from repro.cluster.topology import build_cluster
from repro.core.functions import FunctionImpl
from repro.core.retry import RetryPolicy
from repro.core.system import PCSICloud
from repro.faas.platforms import WASM
from repro.net.gateway import GatewayConfig, ShedError
from repro.sim.deadline import DeadlineExceededError
from repro.sim.engine import Simulator

#: Where the first dispatch of seed 73 lands on the pinned cluster.
LANDING_NODE = "rack0-n0"


def build_cloud(**kwargs):
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=4,
                         gpu_nodes_per_rack=0,
                         node_capacity=server_node(cpus=1, memory_gb=4))
    kwargs.setdefault("health", True)
    cloud = PCSICloud(sim, seed=73, keep_alive=600.0, topology=topo,
                      data_replicas=1, **kwargs)
    cloud.scheduler.control_node = cloud.client_node()
    return cloud


def define(cloud, name, ops):
    return cloud.define_function(
        name, [FunctionImpl("wasm", WASM,
                            cpu_task(cpus=1, memory_gb=1),
                            work_ops=ops)])


def snoop_dispatches(cloud):
    """Record every (time, key, node) the scheduler registers."""
    regs = []
    orig = cloud.health.register_dispatch

    def spy(key, node_id):
        regs.append((cloud.sim.now, key, node_id))
        return orig(key, node_id)

    cloud.health.register_dispatch = spy
    return regs


def test_orphaned_invoke_is_redispatched_and_recovered():
    """Crash mid-compute: phi-accrual confirms the node, the orphan
    event interrupts the doomed attempt, and the platform re-dispatches
    to a healthy node — all with ``max_attempts=1`` (recovery is owned
    by the platform, not the user's retry budget)."""
    cloud = build_cloud(trace=True)
    fn = define(cloud, "batch", 5.2e10)   # ~2.2 s of compute
    regs = snoop_dispatches(cloud)
    FailureInjector(cloud.sim, cloud.topology).crash_node(
        LANDING_NODE, at=0.7)
    cloud.run_process(cloud.invoke(cloud.client_node(), fn))

    health = cloud.health
    assert health.orphaned == 1
    assert health.recovered == 1
    (node, at, cause), = health.detector.confirmations
    assert node == LANDING_NODE and cause == "phi-accrual"
    assert 0.7 < at < 2.0           # well before the attempt's own end
    # Re-dispatch went to a healthy node, under the same idempotency key.
    assert [key for _, key, _ in regs] == ["batch#1", "batch#1"]
    assert regs[0][2] == LANDING_NODE
    assert regs[1][2] != LANDING_NODE
    assert cloud.metrics.counter("invoke.orphaned", fn="batch",
                                 cause="phi-accrual").value == 1
    assert cloud.metrics.counter("invoke.recovered", fn="batch",
                                 cause="phi-accrual").value == 1
    root, = cloud.tracer.spans(name="invoke")
    assert root.attributes.get("recovered") == 1
    assert root.attributes.get("recovery_cause") == "phi-accrual"


def test_executor_lost_fast_path_confirms_immediately():
    """The first ExecutorLostError is hard evidence: the node is
    confirmed dead right away (cause ``executor-lost``), long before
    the heartbeat tail would cross phi_confirm."""
    cloud = build_cloud()
    fn = define(cloud, "front", 2.5e9)    # ~107 ms of compute
    regs = snoop_dispatches(cloud)
    FailureInjector(cloud.sim, cloud.topology).crash_node(
        LANDING_NODE, at=0.05)
    cloud.run_process(cloud.invoke(cloud.client_node(), fn,
                                   retry=RetryPolicy(max_attempts=3)))

    (node, at, cause), = cloud.health.detector.confirmations
    assert node == LANDING_NODE and cause == "executor-lost"
    assert at < 0.2                 # phi-accrual alone needs ~0.85 s
    # The retry avoided the corpse.
    assert regs[-1][2] != LANDING_NODE


def test_completion_log_dedups_platform_redispatch():
    """A re-dispatch that finds its idempotency key already completed
    returns the recorded result without re-running the body."""
    cloud = build_cloud()
    fn = define(cloud, "front", 2.5e9)
    # Idempotency keys are minted deterministically: the first invoke
    # of "front" gets "front#1". Pre-record its completion, as if a
    # prior dispatch had finished right as its host was confirmed dead.
    cloud.health.completions.record("front#1", "recorded-result")
    result = cloud.run_process(cloud.invoke(cloud.client_node(), fn))
    assert result == "recorded-result"
    assert cloud.health.deduped == 1
    assert cloud.sim.now < 0.05     # no compute ran (cold start ~107ms)


def test_retry_fails_fast_when_breakers_are_open():
    """The retry loop checks the breaker board before backing off:
    with every breaker for the function open, it raises immediately
    instead of burning the attempt budget against a dead target."""
    cloud = build_cloud()
    fn = define(cloud, "front", 2.5e9)
    for _ in range(cloud.health.config.breaker_consecutive):
        cloud.health.breakers.record("front", "cpu", False, cloud.sim.now)
    assert cloud.health.all_breakers_open("front")
    with pytest.raises(CircuitOpenError):
        cloud.run_process(cloud.invoke(cloud.client_node(), fn,
                                       retry=RetryPolicy(max_attempts=5)))
    assert cloud.metrics.counter("invoke.breaker_failfast",
                                 fn="front").value == 1


def test_gateway_sheds_when_all_breakers_open():
    """Front-door shedding: the admission gateway refuses a function
    whose every (fn, node class) breaker is open."""
    cloud = build_cloud(admission=GatewayConfig(rate_per_tenant=100.0,
                                                burst=100.0))
    fn = define(cloud, "front", 2.5e9)
    for _ in range(cloud.health.config.breaker_consecutive):
        cloud.health.breakers.record("front", "cpu", False, cloud.sim.now)

    with pytest.raises(ShedError) as exc_info:
        cloud.run_process(cloud.gateway.submit(cloud.client_node(), fn,
                                               tenant="t0"))
    assert exc_info.value.cause == "circuit_open"
    assert cloud.gateway.shed == 1


def test_warm_pool_skips_quarantined_node():
    """A quarantined node's warm executor is left idle: the pool
    cold-starts on a healthy node instead of reusing tainted warmth."""
    cloud = build_cloud()
    fn = define(cloud, "front", 2.5e9)
    regs = snoop_dispatches(cloud)
    client = cloud.client_node()
    cloud.run_process(cloud.invoke(client, fn))
    assert regs[0][2] == LANDING_NODE   # warm executor now lives there
    cloud.health.ejector._quarantined[LANDING_NODE] = 1e9
    cloud.run_process(cloud.invoke(client, fn))
    assert regs[1][2] != LANDING_NODE


def test_placement_avoids_dead_node_with_fallback():
    """Placement filters nodes the health plane flags, but falls back
    to the unfiltered list rather than failing when everything is
    flagged."""
    cloud = build_cloud()
    cloud.health.detector.confirm(LANDING_NODE, 0.0, "test")
    fn = define(cloud, "front", 2.5e9)
    regs = snoop_dispatches(cloud)
    cloud.run_process(cloud.invoke(cloud.client_node(), fn))
    assert regs[0][2] != LANDING_NODE
    # All flagged: the filter must not strand placement entirely.
    for node in cloud.topology.nodes:
        cloud.health.ejector._quarantined[node.node_id] = 1e9
    candidates = cloud.policy.candidates(
        cpu_task(cpus=1, memory_gb=1), WASM)
    assert candidates


def test_deadline_over_crashed_node_records_cause():
    """An invoke that times out because its host died mid-compute gets
    ``cause="node-crash"`` on its root span — even without a health
    plane (the expiry path checks topology liveness directly)."""
    cloud = build_cloud(health=None, trace=True)
    fn = define(cloud, "batch", 5.2e10)
    FailureInjector(cloud.sim, cloud.topology).crash_node(
        LANDING_NODE, at=0.3)
    with pytest.raises(DeadlineExceededError):
        cloud.run_process(cloud.invoke(cloud.client_node(), fn,
                                       deadline=0.5))
    root, = cloud.tracer.spans(name="invoke")
    assert root.attributes.get("cause") == "node-crash"
    assert root.attributes.get("crashed_node") == LANDING_NODE
