"""Tests for placement policies, the optimizer, and scheduling."""

import pytest

from repro.cluster import build_cluster, cpu_task, gpu_task
from repro.core import (
    ColocatePlacement,
    FunctionImpl,
    ImplOptimizer,
    NaivePlacement,
    PCSICloud,
    ScavengePlacement,
    SpreadPlacement,
    make_policy,
)
from repro.faas import CONTAINER, GPU_CONTAINER, NPU_CONTAINER, WASM
from repro.sim import RandomStream, Simulator


def make_topo():
    sim = Simulator()
    return sim, build_cluster(sim, racks=2, nodes_per_rack=4,
                              gpu_nodes_per_rack=1)


# ------------------------------------------------------------------ policies
def test_make_policy_names():
    sim, topo = make_topo()
    for name, cls in (("naive", NaivePlacement),
                      ("colocate", ColocatePlacement),
                      ("scavenge", ScavengePlacement),
                      ("spread", SpreadPlacement)):
        assert isinstance(make_policy(name, topo), cls)
    with pytest.raises(KeyError):
        make_policy("bogus", topo)


def test_candidates_respect_device_and_capacity():
    sim, topo = make_topo()
    policy = make_policy("colocate", topo)
    gpu_candidates = policy.candidates(gpu_task(), GPU_CONTAINER)
    assert all(n.has_device("gpu") for n in gpu_candidates)
    assert len(gpu_candidates) == 2
    # Fill a GPU node; it must drop out.
    gpu_candidates[0].allocate(gpu_task(gpus=4))
    assert len(policy.candidates(gpu_task(), GPU_CONTAINER)) == 1


def test_colocate_honors_hint():
    sim, topo = make_topo()
    policy = make_policy("colocate", topo)
    place = policy.placer()
    node = place(cpu_task(), CONTAINER, "rack1-n2")
    assert node.node_id == "rack1-n2"


def test_colocate_falls_back_to_same_rack():
    sim, topo = make_topo()
    policy = make_policy("colocate", topo)
    hint = "rack1-n2"
    topo.node(hint).allocate(topo.node(hint).capacity)  # full
    node = policy.placer()(cpu_task(), CONTAINER, hint)
    assert node.rack == "rack1"
    assert node.node_id != hint


def test_scavenge_packs_fullest_first():
    sim, topo = make_topo()
    policy = make_policy("scavenge", topo)
    busy = topo.node("rack0-n2")
    busy.allocate(cpu_task(cpus=20, memory_gb=8))
    node = policy.placer()(cpu_task(), CONTAINER, None)
    assert node.node_id == "rack0-n2"


def test_spread_picks_emptiest():
    sim, topo = make_topo()
    policy = make_policy("spread", topo)
    for n in topo.nodes[:-1]:
        n.allocate(cpu_task(cpus=4, memory_gb=4))
    node = policy.placer()(cpu_task(), CONTAINER, None)
    assert node.node_id == topo.nodes[-1].node_id


def test_naive_ignores_hint_deterministically():
    sim, topo = make_topo()
    rng = RandomStream(5, "t")
    policy = NaivePlacement(topo, rng)
    picks = {policy.placer()(cpu_task(), CONTAINER, "rack0-n0").node_id
             for _ in range(30)}
    assert len(picks) > 1  # random across the cluster, hint ignored


def test_placer_returns_none_when_impossible():
    sim, topo = make_topo()
    policy = make_policy("colocate", topo)
    assert policy.placer()(cpu_task(cpus=10_000), CONTAINER, None) is None


# ----------------------------------------------------------------- optimizer
def wasm_impl(work=1e9):
    return FunctionImpl("wasm", WASM, cpu_task(memory_gb=0.5),
                        work_ops=work)


def gpu_impl(work=1e12):
    return FunctionImpl("gpu", GPU_CONTAINER, gpu_task(), work_ops=work)


def test_optimizer_goal_validation():
    with pytest.raises(ValueError):
        ImplOptimizer(goal="vibes")


def test_optimizer_prefers_fast_impl_for_latency():
    from repro.core import FunctionDef
    opt = ImplOptimizer(goal="latency")
    fn = FunctionDef(name="f", impls=[wasm_impl(work=1e12),
                                      gpu_impl(work=1e12)])
    # Cold pools: GPU cold start (2s) dwarfs its compute win at 1e12 ops
    # (wasm: ~28s compute) -> GPU still wins.
    choice = opt.choose(fn, {})
    assert choice.name == "gpu"


def test_optimizer_prefers_cheap_impl_for_cost():
    from repro.core import FunctionDef
    opt = ImplOptimizer(goal="cost")
    fn = FunctionDef(name="f", impls=[wasm_impl(work=1e10),
                                      gpu_impl(work=1e10)])
    choice = opt.choose(fn, {})
    assert choice.name == "wasm"


def test_optimizer_estimates_warmth():
    from repro.core import FunctionDef
    opt = ImplOptimizer()
    impl = wasm_impl()
    est_cold = opt.estimate(impl, None)
    assert not est_cold.warm
    assert est_cold.est_latency >= impl.platform.cold_start


def test_optimizer_npu_beats_gpu_when_added():
    """E8's mechanism: adding a faster NPU impl shifts selection."""
    from repro.core import FunctionDef
    opt = ImplOptimizer(goal="latency")
    fn = FunctionDef(name="serve", impls=[gpu_impl(work=1e13)])
    assert opt.choose(fn, {}).name == "gpu"
    fn.add_impl(FunctionImpl("npu", NPU_CONTAINER, gpu_task(),
                             work_ops=1e13))
    assert opt.choose(fn, {}).name == "npu"


# ------------------------------------------------------------------ scheduler
def test_scheduler_independent_pools_per_impl():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=1,
                      seed=2)
    fn = cloud.define_function("f", [wasm_impl(), gpu_impl()])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn, impl_name="wasm")
        yield from cloud.invoke(client, fn, impl_name="gpu")

    cloud.run_process(flow())
    sizes = cloud.scheduler.pool_sizes()
    assert sizes == {"f/wasm": 1, "f/gpu": 1}


def test_scheduler_explicit_impl_overrides_optimizer():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=1,
                      seed=2)
    fn = cloud.define_function("f", [wasm_impl(work=1e6),
                                     gpu_impl(work=1e13)])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn, impl_name="gpu")

    cloud.run_process(flow())
    assert cloud.scheduler.history[-1].impl_name == "gpu"


def test_scheduler_last_invocation_lookup():
    from repro.core import InvocationError
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=2)
    with pytest.raises(InvocationError):
        cloud.scheduler.last_invocation("nope")
    fn = cloud.define_function("f", [wasm_impl()])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    assert cloud.scheduler.last_invocation("f").fn_name == "f"
