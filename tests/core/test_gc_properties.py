"""Property tests for GC safety and completeness over random graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PCSICloud


def build_random_namespace(cloud, edges, n_dirs, n_files):
    """Build a random directory DAG + file links from a spec.

    ``edges`` is a list of (parent_idx, child_idx, kind) triples where
    kind chooses dir->dir or dir->file links. Returns (dir_refs,
    file_refs, reachable_ids).
    """
    root = cloud.create_root("t")
    dirs = [root] + [cloud.mkdir() for _ in range(n_dirs)]
    files = [cloud.create_object() for _ in range(n_files)]
    linked = set()
    for i, (parent_idx, child_idx, is_file) in enumerate(edges):
        parent = dirs[parent_idx % len(dirs)]
        if is_file:
            child = files[child_idx % len(files)]
        else:
            child = dirs[child_idx % len(dirs)]
            if child.object_id == parent.object_id:
                continue
        key = (parent.object_id, child.object_id)
        if key in linked:
            continue
        linked.add(key)
        cloud.link(parent, f"e{i}", child)

    # Compute reachability in a model, mirroring the kernel's rule.
    children = {}
    for (parent_id, child_id) in linked:
        children.setdefault(parent_id, []).append(child_id)
    reachable = set()
    frontier = [root.object_id]
    while frontier:
        oid = frontier.pop()
        if oid in reachable:
            continue
        reachable.add(oid)
        frontier.extend(children.get(oid, []))
    return dirs, files, reachable


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                          st.booleans()), max_size=20),
       st.integers(1, 4), st.integers(1, 4))
def test_gc_collects_exactly_the_unreachable(edges, n_dirs, n_files):
    """Property: after GC, the surviving object set is exactly the
    model-reachable set (plus pinned objects, of which there are none
    here)."""
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=0)
    dirs, files, reachable = build_random_namespace(cloud, edges,
                                                    n_dirs, n_files)

    def flow():
        return (yield from cloud.collect_garbage())

    cloud.run_process(flow())
    survivors = set(cloud.table.all_ids())
    assert survivors == reachable


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                          st.booleans()), max_size=15),
       st.integers(1, 3), st.integers(1, 3),
       st.integers(0, 5))
def test_gc_never_collects_pinned(edges, n_dirs, n_files, pin_idx):
    """Property: a pinned object survives regardless of reachability."""
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=0)
    dirs, files, reachable = build_random_namespace(cloud, edges,
                                                    n_dirs, n_files)
    pinned = files[pin_idx % len(files)]
    cloud.refs.pin(pinned.object_id)

    def flow():
        return (yield from cloud.collect_garbage())

    cloud.run_process(flow())
    assert pinned.object_id in cloud.table
    cloud.refs.unpin(pinned.object_id)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                          st.booleans()), max_size=15),
       st.integers(1, 3), st.integers(1, 3))
def test_gc_idempotent(edges, n_dirs, n_files):
    """Property: a second collection right after the first finds
    nothing to do."""
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=0)
    build_random_namespace(cloud, edges, n_dirs, n_files)

    def flow():
        first = yield from cloud.collect_garbage()
        second = yield from cloud.collect_garbage()
        return first, second

    first, second = cloud.run_process(flow())
    assert second.collected == 0
    assert second.bytes_reclaimed == 0
