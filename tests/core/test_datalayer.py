"""Tests for the data layer: consistency menu, mutability enforcement,
ephemeral intermediates, and mutability-driven caching."""

import pytest

from repro.core import (
    Consistency,
    Mutability,
    MutabilityError,
    ObjectKind,
    PCSICloud,
)
from repro.net import SizedPayload
from repro.security import Right
from repro.storage import KeyNotFoundError


@pytest.fixture
def cloud():
    return PCSICloud(racks=3, nodes_per_rack=4, gpu_nodes_per_rack=0,
                     seed=3)


def run(cloud, gen):
    return cloud.run_process(gen)


def test_write_read_roundtrip(cloud):
    ref = cloud.create_object()
    node = cloud.client_node()

    def flow():
        size = yield from cloud.op_write(node, ref,
                                         SizedPayload(2048, meta="m"))
        payload = yield from cloud.op_read(node, ref)
        return size, payload

    size, payload = run(cloud, flow())
    assert size == 2048
    assert payload == SizedPayload(2048, meta="m")


def test_append_grows_object(cloud):
    ref = cloud.create_object(mutability=Mutability.APPEND_ONLY)
    node = cloud.client_node()

    def flow():
        yield from cloud.op_write(node, ref, SizedPayload(100), append=True)
        size = yield from cloud.op_write(node, ref, SizedPayload(50),
                                         append=True)
        return size

    assert run(cloud, flow()) == 150


def test_immutable_rejects_all_writes(cloud):
    ref = cloud.create_object(mutability=Mutability.IMMUTABLE)
    node = cloud.client_node()

    def write():
        yield from cloud.op_write(node, ref, SizedPayload(1))

    with pytest.raises(MutabilityError):
        run(cloud, write())

    def append():
        yield from cloud.op_write(node, ref, SizedPayload(1), append=True)

    with pytest.raises(MutabilityError):
        run(cloud, append())


def test_append_only_rejects_overwrite(cloud):
    ref = cloud.create_object(mutability=Mutability.APPEND_ONLY)
    node = cloud.client_node()

    def flow():
        yield from cloud.op_write(node, ref, SizedPayload(10))

    with pytest.raises(MutabilityError):
        run(cloud, flow())


def test_fixed_size_allows_inplace_rejects_resize(cloud):
    ref = cloud.create_object(mutability=Mutability.FIXED_SIZE)
    node = cloud.client_node()

    def establish():
        yield from cloud.op_write(node, ref, SizedPayload(100))
        yield from cloud.op_write(node, ref, SizedPayload(100))  # in place

    run(cloud, establish())

    def resize():
        yield from cloud.op_write(node, ref, SizedPayload(101))

    with pytest.raises(MutabilityError):
        run(cloud, resize())

    def append():
        yield from cloud.op_write(node, ref, SizedPayload(1), append=True)

    with pytest.raises(MutabilityError):
        run(cloud, append())


def test_transition_then_write_denied(cloud):
    ref = cloud.create_object()
    node = cloud.client_node()

    def setup():
        yield from cloud.op_write(node, ref, SizedPayload(10))

    run(cloud, setup())
    cloud.transition(ref, Mutability.IMMUTABLE)

    def write():
        yield from cloud.op_write(node, ref, SizedPayload(10))

    with pytest.raises(MutabilityError):
        run(cloud, write())


def test_transition_requires_write_right(cloud):
    from repro.security import AccessDeniedError
    ref = cloud.create_object(rights=Right.READ)
    with pytest.raises(AccessDeniedError):
        cloud.transition(ref, Mutability.IMMUTABLE)


# ------------------------------------------------------------- consistency
def test_eventual_ops_faster_than_linearizable(cloud):
    strong = cloud.create_object(consistency=Consistency.LINEARIZABLE)
    weak = cloud.create_object(consistency=Consistency.EVENTUAL)
    node = cloud.client_node()

    def flow():
        t0 = cloud.sim.now
        yield from cloud.op_write(node, strong, SizedPayload(1024))
        strong_t = cloud.sim.now - t0
        t1 = cloud.sim.now
        yield from cloud.op_write(node, weak, SizedPayload(1024))
        weak_t = cloud.sim.now - t1
        return strong_t, weak_t

    strong_t, weak_t = run(cloud, flow())
    assert weak_t < strong_t


def test_per_op_consistency_override(cloud):
    ref = cloud.create_object(consistency=Consistency.LINEARIZABLE)
    node = cloud.client_node()

    def flow():
        yield from cloud.op_write(node, ref, SizedPayload(512))
        t0 = cloud.sim.now
        yield from cloud.op_read(node, ref)  # default: strong
        strong_t = cloud.sim.now - t0
        t1 = cloud.sim.now
        yield from cloud.op_read(node, ref,
                                 consistency=Consistency.EVENTUAL)
        weak_t = cloud.sim.now - t1
        return strong_t, weak_t

    strong_t, weak_t = run(cloud, flow())
    assert weak_t < strong_t


# ----------------------------------------------------------------- caching
def test_immutable_reads_hit_cache(cloud):
    ref = cloud.create_object()
    node = cloud.client_node()

    def flow():
        yield from cloud.op_write(node, ref, SizedPayload(4096))
        cloud.transition(ref, Mutability.IMMUTABLE)
        t0 = cloud.sim.now
        yield from cloud.op_read(node, ref)   # miss, fills cache
        miss_t = cloud.sim.now - t0
        t1 = cloud.sim.now
        yield from cloud.op_read(node, ref)   # hit
        hit_t = cloud.sim.now - t1
        return miss_t, hit_t

    miss_t, hit_t = run(cloud, flow())
    assert hit_t < miss_t / 10
    assert cloud.data.cache_hits == 1


def test_mutable_reads_never_cached(cloud):
    ref = cloud.create_object()
    node = cloud.client_node()

    def flow():
        yield from cloud.op_write(node, ref, SizedPayload(4096))
        yield from cloud.op_read(node, ref)
        yield from cloud.op_read(node, ref)

    run(cloud, flow())
    assert cloud.data.cache_hits == 0


def test_cache_is_per_node(cloud):
    ref = cloud.create_object(mutability=Mutability.MUTABLE)
    n1 = "rack0-n0"
    n2 = "rack1-n0"

    def flow():
        yield from cloud.op_write(n1, ref, SizedPayload(1024))
        cloud.transition(ref, Mutability.IMMUTABLE)
        yield from cloud.op_read(n1, ref)  # miss for n1
        yield from cloud.op_read(n2, ref)  # still a miss for n2
        yield from cloud.op_read(n2, ref)  # hit for n2

    run(cloud, flow())
    assert cloud.data.cache_hits == 1
    assert cloud.data.cache_misses == 2


# ------------------------------------------------------------- ephemerals
def test_ephemeral_local_read_is_device_copy(cloud):
    ref = cloud.create_object(ephemeral=True,
                              consistency=Consistency.EVENTUAL)
    producer = "rack0-n0"

    def flow():
        yield from cloud.op_write(producer, ref, SizedPayload(1024))
        t0 = cloud.sim.now
        yield from cloud.op_read(producer, ref)  # co-located consumer
        local_t = cloud.sim.now - t0
        t1 = cloud.sim.now
        yield from cloud.op_read("rack1-n0", ref)  # remote consumer
        remote_t = cloud.sim.now - t1
        return local_t, remote_t

    local_t, remote_t = run(cloud, flow())
    assert local_t < remote_t / 3


def test_ephemeral_read_before_write_raises(cloud):
    ref = cloud.create_object(ephemeral=True)
    node = cloud.client_node()

    def flow():
        yield from cloud.op_read(node, ref)

    with pytest.raises(KeyNotFoundError):
        run(cloud, flow())


def test_preload_rejects_ephemeral(cloud):
    ref = cloud.create_object(ephemeral=True)
    with pytest.raises(ValueError):
        cloud.preload(ref, SizedPayload(10))


def test_preload_then_read(cloud):
    ref = cloud.create_object()
    cloud.preload(ref, SizedPayload(777, meta="weights"))
    node = cloud.client_node()

    def flow():
        payload = yield from cloud.op_read(node, ref)
        return payload

    assert run(cloud, flow()) == SizedPayload(777, meta="weights")


def test_read_requires_read_right(cloud):
    from repro.security import AccessDeniedError
    ref = cloud.create_object(rights=Right.WRITE)
    node = cloud.client_node()

    def flow():
        yield from cloud.op_read(node, ref)

    with pytest.raises(AccessDeniedError):
        run(cloud, flow())
