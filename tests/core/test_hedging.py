"""Tests for hedged invokes: tail-cutting, accounting, and cleanup."""

import pytest

from repro.cluster import build_cluster, cpu_task, server_node
from repro.cluster.failures import FailureInjector
from repro.core import FunctionImpl, PCSICloud
from repro.core.retry import RetryPolicy
from repro.faas import WASM
from repro.sim import Simulator

WORK = 1e10  # ~286 ms on wasm
SLOWDOWN = 10.0
HEDGE_DELAY = 0.4
REQUESTS = 6


def make_gray_cloud(seed=71):
    """A cluster of capacity-one nodes with one warm, gray-slow node.

    Capacity-one nodes force the speculative duplicate onto a
    *different* machine, so the hedge win is placement-independent.
    Returns (cloud, client, fn) with the warm node already degraded.
    """
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=3,
                         gpu_nodes_per_rack=0,
                         node_capacity=server_node(cpus=1, memory_gb=4))
    cloud = PCSICloud(sim, seed=seed, keep_alive=600.0, topology=topo,
                      data_replicas=1)
    client = cloud.client_node()
    cloud.scheduler.control_node = client
    fn = cloud.define_function(
        "gray", [FunctionImpl("wasm", WASM, cpu_task(cpus=1, memory_gb=1),
                              work_ops=WORK)])

    def warm():
        yield from cloud.invoke(client, fn)

    cloud.run_process(warm())
    warm_node = cloud.scheduler.last_invocation("gray").executor_node
    FailureInjector(cloud.sim, cloud.topology, cloud.network).gray_node(
        warm_node, at=cloud.sim.now, slowdown=SLOWDOWN)
    return cloud, client, fn


def run_requests(cloud, client, fn, policy):
    """Run REQUESTS sequential invokes; returns their latencies."""
    latencies = []

    def flow():
        for _ in range(REQUESTS):
            start = cloud.sim.now
            yield from cloud.invoke(client, fn, retry=policy)
            latencies.append(cloud.sim.now - start)

    cloud.run_process(flow())
    return latencies


def test_hedging_cuts_the_gray_tail():
    """Every request on the gray node pays ~10x compute unhedged; the
    hedge escapes to a healthy machine after HEDGE_DELAY."""
    cloud, client, fn = make_gray_cloud()
    slow = run_requests(cloud, client, fn, RetryPolicy(max_attempts=1))

    cloud, client, fn = make_gray_cloud()
    fast = run_requests(cloud, client, fn,
                        RetryPolicy(max_attempts=1,
                                    hedge_delay=HEDGE_DELAY))
    assert max(fast) < max(slow)
    assert max(fast) < 1.0      # hedge delay + cold start + compute
    assert min(slow) > 2.0      # 10x of ~286 ms


def test_hedge_counters_account_every_duplicate():
    cloud, client, fn = make_gray_cloud()
    run_requests(cloud, client, fn,
                 RetryPolicy(max_attempts=1, hedge_delay=HEDGE_DELAY))
    counters = cloud.metrics.counters()
    launched = counters.get("invoke.hedge.launched", 0.0)
    won = counters.get("invoke.hedge.won", 0.0)
    cancelled = counters.get("invoke.hedge.cancelled", 0.0)
    assert launched == REQUESTS         # every request hedged
    assert won == REQUESTS              # the healthy copy always wins
    assert cancelled == launched        # every loser cancelled, none leak


def test_hedge_losers_release_their_executors():
    """The cancelled arm's executor must go back to the pool: with
    capacity-one nodes, leaked-busy executors would strand capacity and
    block later invokes."""
    cloud, client, fn = make_gray_cloud()
    run_requests(cloud, client, fn,
                 RetryPolicy(max_attempts=1, hedge_delay=HEDGE_DELAY))
    pool = cloud.scheduler._pools[("gray", "wasm")]
    assert all(not ex.busy for ex in pool._executors if ex.live)


def test_hedging_is_deterministic():
    runs = []
    for _ in range(2):
        cloud, client, fn = make_gray_cloud()
        runs.append(run_requests(
            cloud, client, fn,
            RetryPolicy(max_attempts=1, hedge_delay=HEDGE_DELAY)))
    assert runs[0] == runs[1]


def test_no_hedge_without_a_delay():
    cloud, client, fn = make_gray_cloud()
    run_requests(cloud, client, fn, RetryPolicy(max_attempts=1))
    assert cloud.metrics.counters().get("invoke.hedge.launched", 0.0) == 0
    with pytest.raises(ValueError):
        RetryPolicy(hedge_delay=-0.1)
