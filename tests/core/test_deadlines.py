"""Tests for deadline propagation: scopes, shrink-only merges, invoke."""

import pytest

from repro.cluster import cpu_task
from repro.core import FunctionImpl, PCSICloud
from repro.core.errors import DeadlineExceededError
from repro.faas import WASM
from repro.sim import Simulator
from repro.sim.deadline import (
    Deadline,
    DeadlineScope,
    check_deadline,
    current_deadline,
)


def slow_impl(work=5e10):
    """~1.4 s of wasm compute."""
    return FunctionImpl("wasm", WASM, cpu_task(cpus=1, memory_gb=0.5),
                        work_ops=work)


def make_cloud(seed=61):
    return PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                     seed=seed, keep_alive=600.0)


# ----------------------------------------------------------------- scopes
def test_scope_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        DeadlineScope(sim, 0.0)
    with pytest.raises(ValueError):
        DeadlineScope(sim, -1.0)


def test_scope_none_budget_is_a_noop():
    sim = Simulator()

    def flow():
        with DeadlineScope(sim, None) as deadline:
            assert deadline is None
            assert current_deadline(sim) is None
        yield sim.timeout(0)

    sim.run_until_event(sim.spawn(flow()))


def test_scopes_only_shrink():
    """An inner scope with a *looser* budget keeps the inherited
    deadline; a tighter one installs its own and restores on exit."""
    sim = Simulator()

    def flow():
        with DeadlineScope(sim, 5.0) as outer:
            with DeadlineScope(sim, 10.0) as inner:
                assert inner is outer          # looser: inherited rules
            with DeadlineScope(sim, 2.0) as tight:
                assert tight.expires_at == pytest.approx(2.0)
                assert current_deadline(sim) is tight
            assert current_deadline(sim) is outer
        assert current_deadline(sim) is None
        yield sim.timeout(0)

    sim.run_until_event(sim.spawn(flow()))


def test_check_deadline_raises_once_spent():
    sim = Simulator()

    def flow():
        with DeadlineScope(sim, 0.1):
            yield sim.timeout(0.2)
            check_deadline(sim, "late op")

    with pytest.raises(DeadlineExceededError):
        sim.run_until_event(sim.spawn(flow()))


def test_deadline_remaining_and_expired():
    deadline = Deadline(5.0)
    assert deadline.remaining(2.0) == pytest.approx(3.0)
    assert not deadline.expired(4.9)
    assert deadline.expired(5.0)


# ----------------------------------------------------------------- invoke
def test_invoke_deadline_raises_exactly_at_expiry():
    """A client with a 50 ms budget on a ~1.4 s function gets its error
    at exactly t = deadline — never blocked past it."""
    cloud = make_cloud()
    fn = cloud.define_function("f", [slow_impl()])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn, deadline=0.05)

    with pytest.raises(DeadlineExceededError):
        cloud.run_process(flow())
    assert cloud.sim.now == pytest.approx(0.05, abs=1e-9)
    assert cloud.metrics.counter("invoke.deadline_exceeded").value == 1


def test_invoke_deadline_validation():
    cloud = make_cloud()
    fn = cloud.define_function("f", [slow_impl(work=0)])
    client = cloud.client_node()
    with pytest.raises(ValueError):
        cloud.run_process(cloud.invoke(client, fn, deadline=-1.0))


def test_slack_deadline_changes_nothing():
    """A deadline that never fires must not perturb the simulation:
    same result, same virtual completion time as no deadline at all."""
    times = []
    for deadline in (None, 60.0):
        cloud = make_cloud()
        fn = cloud.define_function("f", [slow_impl(work=1e9)])
        client = cloud.client_node()

        def flow():
            yield from cloud.invoke(client, fn, deadline=deadline)

        cloud.run_process(flow())
        times.append(cloud.sim.now)
    assert times[0] == times[1]


def test_deadline_visible_and_shrunk_in_the_body():
    """The body sees the propagated deadline; by the time it runs,
    dispatch and cold start have already consumed part of the budget."""
    seen = {}

    cloud = make_cloud()

    def body(ctx):
        seen["deadline"] = ctx.deadline
        seen["remaining"] = ctx.remaining_budget()
        yield ctx._kernel.sim.timeout(0)

    fn = cloud.define_function("probe", [slow_impl(work=0)], body=body)
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn, deadline=1.0)

    cloud.run_process(flow())
    assert seen["deadline"] is not None
    assert seen["deadline"].expires_at == pytest.approx(1.0)
    assert 0.0 < seen["remaining"] < 1.0


def test_unbounded_invoke_sees_no_deadline():
    cloud = make_cloud()
    seen = {}

    def body(ctx):
        seen["deadline"] = ctx.deadline
        seen["remaining"] = ctx.remaining_budget()
        yield ctx._kernel.sim.timeout(0)

    fn = cloud.define_function("probe", [slow_impl(work=0)], body=body)
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    assert seen["deadline"] is None
    assert seen["remaining"] is None


def test_nested_invoke_inherits_the_parent_budget():
    """A nested invoke cannot out-wait its caller: the inner body sees
    the outer deadline, not an unbounded one."""
    cloud = make_cloud()
    seen = {}

    def inner_body(ctx):
        seen["inner"] = ctx.deadline
        yield ctx._kernel.sim.timeout(0)

    inner = cloud.define_function("inner", [slow_impl(work=0)],
                                  body=inner_body)

    def outer_body(ctx):
        yield from ctx.invoke(inner)

    outer = cloud.define_function("outer", [slow_impl(work=0)],
                                  body=outer_body)
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, outer, deadline=2.0)

    cloud.run_process(flow())
    assert seen["inner"] is not None
    assert seen["inner"].expires_at <= 2.0 + 1e-9
