"""Model-based property tests: the namespace vs a reference model.

A PCSI directory tree must behave exactly like a nested dict of names.
The stateful test below performs random link/unlink/mkdir/resolve
operations against both the kernel and a plain-Python model and checks
they never disagree — including through union mounts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core import ObjectNotFoundError, PCSICloud
from repro.core.unionfs import union_list, union_lookup
from repro.security import Right

NAMES = ["alpha", "beta", "gamma", "delta"]


class NamespaceMachine(RuleBasedStateMachine):
    """Random namespace mutations, mirrored against a dict model."""

    def __init__(self):
        super().__init__()
        self.cloud = PCSICloud(racks=1, nodes_per_rack=4,
                               gpu_nodes_per_rack=0, seed=0)
        self.root = self.cloud.create_root("t")
        # model: dir object_id -> {name: child object_id}
        self.model = {self.root.object_id: {}}
        self.refs = {self.root.object_id: self.root}

    dirs = Bundle("dirs")

    @rule(target=dirs)
    def start_dir(self):
        return self.root.object_id

    @rule(target=dirs, parent=dirs, name=st.sampled_from(NAMES))
    def mkdir(self, parent, name):
        if name in self.model[parent]:
            return self.model[parent][name] \
                if self.model[parent][name] in self.model else parent
        child = self.cloud.mkdir()
        self.cloud.link(self.refs[parent], name, child)
        self.model[parent][name] = child.object_id
        self.model[child.object_id] = {}
        self.refs[child.object_id] = child
        return child.object_id

    @rule(parent=dirs, name=st.sampled_from(NAMES))
    def link_file(self, parent, name):
        if name in self.model[parent]:
            return
        ref = self.cloud.create_object()
        self.cloud.link(self.refs[parent], name, ref)
        self.model[parent][name] = ref.object_id
        self.refs[ref.object_id] = ref

    @rule(parent=dirs, name=st.sampled_from(NAMES))
    def unlink(self, parent, name):
        if name not in self.model[parent]:
            with pytest.raises(ObjectNotFoundError):
                self.cloud.unlink(self.refs[parent], name)
            return
        self.cloud.unlink(self.refs[parent], name)
        child = self.model[parent].pop(name)
        # (The object may stay reachable through other links; the
        # model only tracks names, mirroring the kernel exactly.)

    @rule(parent=dirs, name=st.sampled_from(NAMES))
    def resolve_matches_model(self, parent, name):
        expected = self.model[parent].get(name)
        if expected is None:
            with pytest.raises(ObjectNotFoundError):
                self.cloud.run_process(
                    self.cloud.resolve(self.refs[parent], name))
        else:
            got = self.cloud.run_process(
                self.cloud.resolve(self.refs[parent], name))
            assert got.object_id == expected

    @invariant()
    def listings_match_model(self):
        for dir_id, entries in self.model.items():
            assert self.cloud.listdir(self.refs[dir_id]) == \
                sorted(entries)


TestNamespaceMachine = NamespaceMachine.TestCase
TestNamespaceMachine.settings = settings(max_examples=25,
                                         stateful_step_count=30,
                                         deadline=None)


# -------------------------------------------------- union-specific properties
@given(st.lists(st.tuples(st.sampled_from(NAMES), st.integers(0, 2)),
                max_size=12))
def test_union_lookup_first_layer_wins(bindings):
    """Property: union lookup returns the top-most layer that binds the
    name, for any distribution of bindings across three layers."""
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=1)
    layers = [cloud.mkdir() for _ in range(3)]
    expected = {}
    bound = [set(), set(), set()]
    for name, layer_idx in bindings:
        if name in bound[layer_idx]:
            continue
        target = cloud.create_object()
        cloud.link(layers[layer_idx], name, target)
        bound[layer_idx].add(name)
        # Lower index = higher layer: record only the best binding.
        current = expected.get(name)
        if current is None or layer_idx < current[0]:
            expected[name] = (layer_idx, target.object_id)
    upper = layers[0]
    cloud.mount_union(upper, [layers[1], layers[2]])
    table = cloud.table
    upper_obj = table.get(upper.object_id)
    for name in NAMES:
        entry = union_lookup(table, upper_obj, name)
        if name in expected:
            assert entry is not None
            assert entry.object_id == expected[name][1]
        else:
            assert entry is None
    assert union_list(table, upper_obj) == sorted(expected)


@given(st.sets(st.sampled_from(NAMES)), st.sets(st.sampled_from(NAMES)))
def test_whiteouts_hide_exactly_the_unlinked(lower_names, hidden):
    """Property: after unlinking a subset of lower-layer names through
    the union, the visible set is exactly lower - hidden."""
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=2)
    lower = cloud.mkdir()
    for name in lower_names:
        cloud.link(lower, name, cloud.create_object())
    upper = cloud.mkdir()
    cloud.mount_union(upper, [lower])
    for name in hidden & lower_names:
        cloud.unlink(upper, name)
    assert set(cloud.listdir(upper)) == lower_names - hidden
    assert set(cloud.listdir(lower)) == lower_names  # untouched
