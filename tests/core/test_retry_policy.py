"""Tests for the RetryPolicy subsystem: backoff, jitter, budgets, races."""

import pytest

from repro.core.retry import (
    DEFAULT_BACKOFF_CAP,
    DEFAULT_BACKOFF_MULTIPLIER,
    RetryBudget,
    RetryPolicy,
    race_first_success,
)
from repro.sim import Simulator
from repro.sim.rng import RandomStream


# ------------------------------------------------------------- validation
def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_cap=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5, rng=RandomStream(1, "r"))
    with pytest.raises(ValueError):
        RetryPolicy(jitter=0.5)  # jitter without a seeded stream
    with pytest.raises(ValueError):
        RetryPolicy(hedge_delay=0.0)


def test_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(deposit_per_request=-0.1)
    with pytest.raises(ValueError):
        RetryBudget(cap=0.0)
    with pytest.raises(ValueError):
        RetryBudget(initial=11.0)  # above the cap


# ---------------------------------------------------------------- backoff
def test_backoff_matches_legacy_closed_form():
    """Defaults reproduce the old inline loop: base, 2x, capped at 1 s."""
    policy = RetryPolicy(max_attempts=10)
    base = 0.2
    assert policy.backoff(1, base) == pytest.approx(0.2)
    assert policy.backoff(2, base) == pytest.approx(0.4)
    assert policy.backoff(3, base) == pytest.approx(0.8)
    assert policy.backoff(4, base) == DEFAULT_BACKOFF_CAP
    assert policy.backoff(9, base) == DEFAULT_BACKOFF_CAP
    assert policy.multiplier == DEFAULT_BACKOFF_MULTIPLIER


def test_first_backoff_is_uncapped_like_the_old_loop():
    policy = RetryPolicy(max_attempts=5, base_backoff=2.0)
    assert policy.backoff(1, 2.0) == 2.0       # first: uncapped base
    assert policy.backoff(2, 2.0) == DEFAULT_BACKOFF_CAP


def test_backoff_attempt_is_one_based():
    with pytest.raises(ValueError):
        RetryPolicy().backoff(0, 0.1)


# ----------------------------------------------------------------- jitter
def test_zero_jitter_draws_nothing():
    """A jitter-free policy must not consume from any stream, so legacy
    call sites stay bit-identical."""
    rng = RandomStream(7, "jitter")
    policy = RetryPolicy(max_attempts=3, rng=rng)
    before = [policy.next_delay(n, 0.1) for n in (1, 2)]
    assert before == [pytest.approx(0.1), pytest.approx(0.2)]
    assert rng.uniform() == RandomStream(7, "jitter").uniform()


def test_jitter_shaves_within_bounds_and_is_seeded():
    policy_a = RetryPolicy(max_attempts=5, jitter=0.5,
                           rng=RandomStream(3, "retry"))
    policy_b = RetryPolicy(max_attempts=5, jitter=0.5,
                           rng=RandomStream(3, "retry"))
    delays_a = [policy_a.next_delay(n, 0.2) for n in range(1, 5)]
    delays_b = [policy_b.next_delay(n, 0.2) for n in range(1, 5)]
    assert delays_a == delays_b  # same seed, same shave
    for n, delay in enumerate(delays_a, start=1):
        full = policy_a.backoff(n, 0.2)
        assert full * 0.5 <= delay <= full


# ----------------------------------------------------------------- budget
def test_budget_deposit_and_withdraw():
    budget = RetryBudget(deposit_per_request=0.2, cap=10.0, initial=0.0)
    assert not budget.withdraw()        # dry: vetoed
    assert budget.vetoed == 1
    for _ in range(5):
        budget.deposit()                # 5 requests earn one token
    assert budget.tokens == pytest.approx(1.0)
    assert budget.withdraw()
    assert budget.granted == 1
    assert budget.tokens == pytest.approx(0.0)


def test_budget_caps_amplification():
    """Sustained 100% failure retries at most deposit_per_request of
    offered load once the initial bucket drains."""
    budget = RetryBudget(deposit_per_request=0.2, cap=10.0, initial=0.0)
    retries = 0
    for _ in range(100):
        budget.deposit()
        if budget.withdraw():
            retries += 1
    assert retries == 20


def test_policy_budget_plumbing():
    budget = RetryBudget(initial=1.0)
    policy = RetryPolicy(max_attempts=3, budget=budget)
    policy.note_request()
    assert policy.allow_retry()         # spends the one token
    assert not policy.allow_retry()     # dry now
    assert RetryPolicy(max_attempts=3).allow_retry()  # no budget: free


# ------------------------------------------------------ race_first_success
def test_race_first_success_tolerates_early_failure():
    """The primary dying must not kill a healthy secondary — unlike
    any_of, the race only fails once everyone has."""
    sim = Simulator()

    def fails_fast():
        yield sim.timeout(0.1)
        raise RuntimeError("primary died")

    def succeeds_late():
        yield sim.timeout(0.5)
        return "secondary"

    def flow():
        procs = [sim.spawn(fails_fast(), name="p"),
                 sim.spawn(succeeds_late(), name="s")]
        winner = yield from race_first_success(sim, procs)
        return winner.value

    assert sim.run_until_event(sim.spawn(flow())) == "secondary"


def test_race_first_success_fails_with_first_failure():
    sim = Simulator()

    def boom(delay, msg):
        yield sim.timeout(delay)
        raise RuntimeError(msg)

    def flow():
        procs = [sim.spawn(boom(0.2, "second"), name="a"),
                 sim.spawn(boom(0.1, "first"), name="b")]
        yield from race_first_success(sim, procs)

    with pytest.raises(RuntimeError, match="first"):
        sim.run_until_event(sim.spawn(flow()))


def test_race_first_success_needs_contenders():
    sim = Simulator()
    with pytest.raises(ValueError):
        list(race_first_success(sim, []))
