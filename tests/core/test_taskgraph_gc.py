"""Tests for task graphs, graph execution, and garbage collection."""

import pytest

from repro.cluster import cpu_task, gpu_task
from repro.core import (
    FunctionImpl,
    Intermediate,
    InvocationError,
    Mutability,
    ObjectKind,
    PCSICloud,
    TaskGraph,
)
from repro.faas import CONTAINER, GPU_CONTAINER, WASM
from repro.net import SizedPayload
from repro.security import Right


def wasm_impl(name="wasm", work=1e8):
    return FunctionImpl(name, WASM, cpu_task(memory_gb=0.5), work_ops=work)


@pytest.fixture
def cloud():
    return PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=1,
                     seed=5, keep_alive=600.0)


# ------------------------------------------------------------------ structure
def test_graph_duplicate_stage_rejected(cloud):
    fn = cloud.define_function("f", [wasm_impl()])
    g = TaskGraph()
    g.add_stage("a", fn)
    with pytest.raises(InvocationError):
        g.add_stage("a", fn)


def test_graph_link_validation(cloud):
    fn = cloud.define_function("f", [wasm_impl()])
    g = TaskGraph()
    g.add_stage("a", fn)
    with pytest.raises(InvocationError):
        g.link("a", "ghost")
    with pytest.raises(InvocationError):
        g.link("a", "a")


def test_topo_order_and_cycles(cloud):
    fn = cloud.define_function("f", [wasm_impl()])
    g = TaskGraph()
    for name in "abc":
        g.add_stage(name, fn)
    g.link("a", "b")
    g.link("b", "c")
    assert g.topo_order() == ["a", "b", "c"]
    g.link("c", "a")
    with pytest.raises(InvocationError):
        g.topo_order()


def test_inconsistent_intermediate_rejected(cloud):
    fn = cloud.define_function("f", [wasm_impl()])
    g = TaskGraph()
    g.add_stage("a", fn, args={"out": Intermediate("x", nbytes_hint=10)})
    g.add_stage("b", fn, args={"in": Intermediate("x", nbytes_hint=20)})
    with pytest.raises(InvocationError):
        g.intermediates()


# ------------------------------------------------------------------ execution
def build_two_stage(cloud):
    produce = cloud.define_function(
        "produce", [wasm_impl("wasm", work=1e8)],
        writes=["out"], output_nbytes=4096)
    consume = cloud.define_function(
        "consume", [wasm_impl("wasm", work=1e8)],
        reads=["in"], output_nbytes=0)
    g = TaskGraph("two-stage")
    mid = Intermediate("mid", nbytes_hint=4096)
    g.add_stage("produce", produce, args={"out": mid})
    g.add_stage("consume", consume, args={"in": mid})
    g.link("produce", "consume")
    return g


def test_graph_runs_stages_in_order(cloud):
    g = build_two_stage(cloud)
    client = cloud.client_node()

    def flow():
        result = yield from cloud.submit_graph(client, g)
        return result

    result = cloud.run_process(flow())
    assert set(result.results) == {"produce", "consume"}
    assert result.results["consume"]["bytes_in"] == 4096
    assert result.latency > 0


def test_colocate_policy_lands_consumer_with_producer(cloud):
    g = build_two_stage(cloud)
    client = cloud.client_node()

    def flow():
        result = yield from cloud.submit_graph(client, g)
        return result

    result = cloud.run_process(flow())
    assert result.colocated("produce", "consume")


def test_naive_policy_usually_separates_stages():
    cloud = PCSICloud(racks=4, nodes_per_rack=8, gpu_nodes_per_rack=0,
                      placement="naive", seed=9, keep_alive=600.0)
    g = build_two_stage(cloud)
    client = cloud.client_node()
    colocated = 0
    for _ in range(10):
        def flow():
            result = yield from cloud.submit_graph(client, g)
            return result
        result = cloud.run_process(flow())
        if result.colocated("produce", "consume"):
            colocated += 1
    # 32 nodes: random placement rarely co-locates (warm pools may
    # re-use executors, so allow some).
    assert colocated < 8


def test_intermediates_ephemeral_under_colocate_replicated_under_naive():
    colo = PCSICloud(racks=2, nodes_per_rack=4, placement="colocate",
                     seed=1)
    naive = PCSICloud(racks=2, nodes_per_rack=4, placement="naive", seed=1)
    for cloud, expect_ephemeral in ((colo, True), (naive, False)):
        g = build_two_stage(cloud)
        client = cloud.client_node()

        def flow():
            result = yield from cloud.submit_graph(client, g)
            return result

        result = cloud.run_process(flow())
        ref = result.intermediate_refs["mid"]
        assert cloud.table.get(ref.object_id).ephemeral is expect_ephemeral


# ------------------------------------------------------------------------- GC
def test_gc_collects_unreachable_objects(cloud):
    root = cloud.create_root("alice")
    kept = cloud.create_object()
    doomed = cloud.create_object()
    cloud.link(root, "kept", kept)
    client = cloud.client_node()

    def flow():
        yield from cloud.op_write(client, kept, SizedPayload(1000))
        yield from cloud.op_write(client, doomed, SizedPayload(3000))
        stats = yield from cloud.collect_garbage()
        return stats

    stats = cloud.run_process(flow())
    assert stats.collected >= 1
    assert kept.object_id in cloud.table
    assert doomed.object_id not in cloud.table
    # 3 replicas held the doomed content.
    assert stats.bytes_reclaimed == 3 * 3000


def test_gc_spares_pinned_objects(cloud):
    floating = cloud.create_object()
    cloud.refs.pin(floating.object_id)

    def flow():
        stats = yield from cloud.collect_garbage()
        return stats

    cloud.run_process(flow())
    assert floating.object_id in cloud.table
    cloud.refs.unpin(floating.object_id)

    def flow2():
        stats = yield from cloud.collect_garbage()
        return stats

    cloud.run_process(flow2())
    assert floating.object_id not in cloud.table


def test_gc_walks_directory_graph(cloud):
    root = cloud.create_root("t")
    d1 = cloud.mkdir()
    d2 = cloud.mkdir()
    leaf = cloud.create_object()
    cloud.link(root, "d1", d1)
    cloud.link(d1, "d2", d2)
    cloud.link(d2, "leaf", leaf)

    def flow():
        return (yield from cloud.collect_garbage())

    stats = cloud.run_process(flow())
    for ref in (d1, d2, leaf):
        assert ref.object_id in cloud.table


def test_gc_walks_union_lower_layers(cloud):
    root = cloud.create_root("t")
    upper = cloud.mkdir()
    lower = cloud.mkdir()
    in_lower = cloud.create_object()
    cloud.link(lower, "f", in_lower)
    cloud.mount_union(upper, [lower])
    cloud.link(root, "u", upper)
    # lower is NOT linked anywhere; reachability must flow through the
    # union mount.

    def flow():
        return (yield from cloud.collect_garbage())

    cloud.run_process(flow())
    assert lower.object_id in cloud.table
    assert in_lower.object_id in cloud.table


def test_gc_reclaims_fifo_state(cloud):
    fifo = cloud.create_fifo(host_node="rack0-n0")
    oid = fifo.object_id
    assert oid in cloud._fifos

    def flow():
        return (yield from cloud.collect_garbage())

    cloud.run_process(flow())
    assert oid not in cloud.table
    assert oid not in cloud._fifos


def test_gc_keeps_args_of_live_invocations(cloud):
    """An object passed to a running function must survive GC even when
    unlinked from every namespace."""
    data = cloud.create_object()
    cloud.preload(data, SizedPayload(100))

    def slow_body(ctx):
        payload = yield from ctx.read(ctx.args["data"])
        yield from ctx.compute(5e12)  # long-running
        return {"n": payload.nbytes}

    fn = cloud.define_function("slow", [wasm_impl(work=0)], body=slow_body)
    client = cloud.client_node()
    outcome = {}

    def invoker():
        outcome["result"] = yield from cloud.invoke(client, fn,
                                                    {"data": data})

    def collector():
        yield cloud.sim.timeout(1.0)  # while the function still runs
        outcome["stats"] = yield from cloud.collect_garbage()

    cloud.sim.spawn(invoker())
    cloud.sim.spawn(collector())
    cloud.sim.run()
    assert outcome["result"]["n"] == 100  # read succeeded, GC didn't bite
