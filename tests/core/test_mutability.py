"""Tests for the Figure 1 mutability lattice."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ALLOWED_TRANSITIONS,
    InvalidTransitionError,
    Mutability,
    can_transition,
    check_transition,
    transition_matrix,
)
from repro.core.mutability import (
    allows_append,
    allows_overwrite,
    allows_resize,
    cacheable_fraction,
    is_terminal,
)

M = Mutability


def test_figure1_transitions():
    """The exact lattice: restriction only, IMMUTABLE is a sink."""
    assert can_transition(M.MUTABLE, M.APPEND_ONLY)
    assert can_transition(M.MUTABLE, M.FIXED_SIZE)
    assert can_transition(M.MUTABLE, M.IMMUTABLE)
    assert can_transition(M.APPEND_ONLY, M.IMMUTABLE)
    assert can_transition(M.FIXED_SIZE, M.IMMUTABLE)
    # Forbidden directions.
    assert not can_transition(M.IMMUTABLE, M.MUTABLE)
    assert not can_transition(M.IMMUTABLE, M.APPEND_ONLY)
    assert not can_transition(M.APPEND_ONLY, M.MUTABLE)
    assert not can_transition(M.FIXED_SIZE, M.MUTABLE)
    assert not can_transition(M.APPEND_ONLY, M.FIXED_SIZE)
    assert not can_transition(M.FIXED_SIZE, M.APPEND_ONLY)


def test_self_transitions_allowed():
    for level in M:
        assert can_transition(level, level)


def test_check_transition_raises():
    with pytest.raises(InvalidTransitionError):
        check_transition(M.IMMUTABLE, M.MUTABLE)
    check_transition(M.MUTABLE, M.IMMUTABLE)  # no raise


def test_write_permissions_by_level():
    assert allows_overwrite(M.MUTABLE)
    assert allows_overwrite(M.FIXED_SIZE)
    assert not allows_overwrite(M.APPEND_ONLY)
    assert not allows_overwrite(M.IMMUTABLE)
    assert allows_append(M.MUTABLE)
    assert allows_append(M.APPEND_ONLY)
    assert not allows_append(M.FIXED_SIZE)
    assert not allows_append(M.IMMUTABLE)
    assert allows_resize(M.MUTABLE)
    assert allows_resize(M.APPEND_ONLY)
    assert not allows_resize(M.FIXED_SIZE)
    assert not allows_resize(M.IMMUTABLE)


def test_cacheability():
    assert cacheable_fraction(M.IMMUTABLE, written=True) == 1.0
    assert cacheable_fraction(M.APPEND_ONLY, written=True) == 1.0
    assert cacheable_fraction(M.MUTABLE, written=True) == 0.0
    assert cacheable_fraction(M.FIXED_SIZE, written=True) == 0.0


def test_transition_matrix_shape():
    rows = transition_matrix()
    assert len(rows) == 16
    allowed = sum(1 for _s, _d, ok in rows if ok)
    # 4 self-loops + 5 lattice edges.
    assert allowed == 9


def test_immutable_is_terminal():
    assert is_terminal(M.IMMUTABLE)
    assert not is_terminal(M.MUTABLE)
    assert not is_terminal(M.APPEND_ONLY)


@given(st.lists(st.sampled_from(list(M)), min_size=1, max_size=8))
def test_no_path_escapes_immutable(levels):
    """Property: once IMMUTABLE, no sequence of legal transitions can
    restore any write capability."""
    current = M.IMMUTABLE
    for nxt in levels:
        if can_transition(current, nxt):
            current = nxt
    assert current == M.IMMUTABLE


@given(st.lists(st.sampled_from(list(M)), min_size=1, max_size=8))
def test_write_capability_monotone_nonincreasing(levels):
    """Property: along any legal transition path, the set of allowed
    write operations never grows."""
    def caps(level):
        return (allows_overwrite(level), allows_append(level),
                allows_resize(level))

    current = M.MUTABLE
    for nxt in levels:
        if can_transition(current, nxt):
            before = caps(current)
            after = caps(nxt)
            assert all(not a or b for a, b in zip(after, before)), \
                f"{current} -> {nxt} gained a capability"
            current = nxt
