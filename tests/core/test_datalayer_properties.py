"""Model-based property tests for data-layer size accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Consistency, Mutability, MutabilityError, PCSICloud
from repro.net import SizedPayload


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(1, 10_000)),
                min_size=1, max_size=12))
def test_size_tracks_write_append_sequence(ops):
    """Property: object size equals the model after any write/append
    mix on a MUTABLE object, and reads report it."""
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=0)
    ref = cloud.create_object(consistency=Consistency.EVENTUAL)
    node = cloud.data.store.replica_nodes[0]  # read-your-writes node
    expected = 0

    def flow():
        nonlocal expected
        for append, nbytes in ops:
            yield from cloud.op_write(node, ref, SizedPayload(nbytes),
                                      append=append)
            expected = expected + nbytes if append else nbytes
        payload = yield from cloud.op_read(node, ref)
        return payload

    payload = cloud.run_process(flow())
    assert payload.nbytes == expected
    assert cloud.table.get(ref.object_id).size == expected


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(1, 5_000), min_size=1, max_size=10))
def test_append_only_object_is_append_sum(chunks):
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=0)
    ref = cloud.create_object(mutability=Mutability.APPEND_ONLY,
                              consistency=Consistency.EVENTUAL)
    node = cloud.data.store.replica_nodes[0]

    def flow():
        for nbytes in chunks:
            yield from cloud.op_write(node, ref, SizedPayload(nbytes),
                                      append=True)

    cloud.run_process(flow())
    assert cloud.table.get(ref.object_id).size == sum(chunks)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["write", "append", "freeze"]),
                min_size=1, max_size=10))
def test_mutability_enforcement_matches_model(script):
    """Property: op acceptance always matches a tiny reference model
    of the Figure 1 rules."""
    cloud = PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=0)
    ref = cloud.create_object(consistency=Consistency.EVENTUAL)
    node = cloud.data.store.replica_nodes[0]
    frozen = False

    def flow():
        nonlocal frozen
        for action in script:
            if action == "freeze":
                if frozen:
                    continue
                cloud.transition(ref, Mutability.IMMUTABLE)
                frozen = True
                continue
            append = action == "append"
            should_fail = frozen

            def attempt(append=append):
                yield from cloud.op_write(node, ref, SizedPayload(10),
                                          append=append)
            if should_fail:
                try:
                    yield from attempt()
                except MutabilityError:
                    continue
                raise AssertionError("write on frozen object succeeded")
            yield from attempt()

    cloud.run_process(flow())
