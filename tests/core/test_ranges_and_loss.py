"""Tests for scatter/gather reads and executor-loss recovery."""

import pytest

from repro.cluster import MB, cpu_task
from repro.cluster.failures import FailureInjector
from repro.core import Consistency, FunctionImpl, PCSICloud
from repro.faas import WASM, ExecutorLostError
from repro.net import SizedPayload
from repro.sim import MS


@pytest.fixture
def cloud():
    return PCSICloud(racks=3, nodes_per_rack=4, gpu_nodes_per_rack=0,
                     seed=55, keep_alive=600.0)


# ------------------------------------------------------------- range reads
def test_range_read_returns_requested_length(cloud):
    ref = cloud.create_object(consistency=Consistency.EVENTUAL)
    cloud.preload(ref, SizedPayload(1 * MB, meta="blob"))
    client = cloud.client_node()

    def flow():
        chunk = yield from cloud.op_read_range(client, ref,
                                               offset=1000, length=4096)
        return chunk

    chunk = cloud.run_process(flow())
    assert chunk.nbytes == 4096
    assert chunk.meta == "blob"


def test_range_read_much_cheaper_than_full_read(cloud):
    """Small-block reads from a large object move small payloads —
    the fine-grained-operations case §2.1 says REST serves poorly."""
    ref = cloud.create_object(consistency=Consistency.EVENTUAL)
    cloud.preload(ref, SizedPayload(64 * MB))
    client = cloud.client_node()

    def flow():
        t0 = cloud.sim.now
        yield from cloud.op_read(client, ref)
        full = cloud.sim.now - t0
        t1 = cloud.sim.now
        yield from cloud.op_read_range(client, ref, 0, 4096)
        ranged = cloud.sim.now - t1
        return full, ranged

    full, ranged = cloud.run_process(flow())
    assert ranged < full / 10


def test_range_validation(cloud):
    ref = cloud.create_object()
    cloud.preload(ref, SizedPayload(100))
    client = cloud.client_node()

    def bad(offset, length):
        def flow():
            yield from cloud.op_read_range(client, ref, offset, length)
        return flow

    for offset, length in ((-1, 10), (0, -5), (50, 51)):
        with pytest.raises(ValueError):
            cloud.run_process(bad(offset, length)())


def test_readv_gathers_in_one_round_trip(cloud):
    """k extents over readv cost ~one exchange; k separate range reads
    cost k exchanges."""
    ref = cloud.create_object(consistency=Consistency.EVENTUAL)
    cloud.preload(ref, SizedPayload(16 * MB))
    # A client that is NOT co-located with any data replica: the win
    # comes from saving network exchanges.
    replicas = set(cloud.data.store.replica_nodes)
    client = next(n.node_id for n in cloud.topology.nodes
                  if n.node_id not in replicas)
    extents = [(i * 100_000, 4096) for i in range(8)]

    def flow():
        t0 = cloud.sim.now
        payloads = yield from cloud.op_readv(client, ref, extents)
        vectored = cloud.sim.now - t0
        t1 = cloud.sim.now
        for offset, length in extents:
            yield from cloud.op_read_range(client, ref, offset, length)
        separate = cloud.sim.now - t1
        return payloads, vectored, separate

    payloads, vectored, separate = cloud.run_process(flow())
    assert [p.nbytes for p in payloads] == [4096] * 8
    assert vectored < separate / 3


def test_readv_validation(cloud):
    ref = cloud.create_object()
    cloud.preload(ref, SizedPayload(100))
    client = cloud.client_node()

    def empty():
        yield from cloud.op_readv(client, ref, [])

    with pytest.raises(ValueError):
        cloud.run_process(empty())

    def overflow():
        yield from cloud.op_readv(client, ref, [(0, 200)])

    with pytest.raises(ValueError):
        cloud.run_process(overflow())


# -------------------------------------------------------------- executor loss
def test_compute_raises_when_node_dies(cloud):
    from repro.faas import CONTAINER, Executor
    node = cloud.topology.node("rack0-n1")
    ex = Executor(cloud.sim, node, CONTAINER, cpu_task())

    def flow():
        yield from ex.provision()
        killer = cloud.sim.spawn(_kill_later(cloud, node, 0.1))
        yield from ex.compute(5e10)  # ~1 s: dies mid-way

    with pytest.raises(ExecutorLostError):
        cloud.run_process(flow())


def _kill_later(cloud, node, delay):
    yield cloud.sim.timeout(delay)
    node.crash()


def test_invocation_survives_executor_loss_with_retry(cloud):
    """Crash the machine running the function mid-compute: with
    retries, the invocation transparently re-runs elsewhere — the
    no-implicit-state payoff."""
    fn = cloud.define_function(
        "long", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=5e10)])
    client = cloud.client_node()
    cloud.scheduler.control_node = client

    outcome = {}

    def busy_executor():
        for pool in cloud.scheduler._pools.values():
            for ex in pool._executors:
                if ex.busy:
                    return ex
        return None

    def invoker():
        result = yield from cloud.invoke(client, fn, max_attempts=3)
        outcome["result"] = result
        outcome["at"] = cloud.sim.now

    def assassin():
        # Wait until the invocation is running, then kill its machine.
        while busy_executor() is None and not outcome:
            yield cloud.sim.timeout(10 * MS)
        yield cloud.sim.timeout(200 * MS)  # mid-compute (~1.4 s total)
        victim = busy_executor()
        if victim is not None and victim.node.node_id != client:
            victim.node.crash()
            outcome["killed"] = victim.node.node_id

    cloud.sim.spawn(invoker())
    cloud.sim.spawn(assassin())
    cloud.sim.run()
    assert "result" in outcome
    assert outcome.get("killed") is not None
    final = cloud.scheduler.history[-1]
    assert final.executor_node != outcome["killed"]
    assert cloud.metrics.counter("invoke.retries").value >= 1


def test_executor_loss_not_retried_without_opt_in(cloud):
    fn = cloud.define_function(
        "long", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=5e10)])
    client = cloud.client_node()
    cloud.scheduler.control_node = client
    failures = []

    def invoker():
        try:
            yield from cloud.invoke(client, fn)
        except ExecutorLostError:
            failures.append(cloud.sim.now)

    def assassin():
        yield cloud.sim.timeout(600 * MS)
        for pool in cloud.scheduler._pools.values():
            for ex in pool._executors:
                if ex.busy:
                    ex.node.crash()

    cloud.sim.spawn(invoker())
    cloud.sim.spawn(assassin())
    cloud.sim.run()
    assert len(failures) == 1
