"""Edge-case tests for the PCSICloud facade."""

import pytest

from repro.cluster import cpu_task
from repro.core import (
    Consistency,
    FunctionImpl,
    ObjectKind,
    ObjectNotFoundError,
    ObjectTypeError,
    PCSICloud,
)
from repro.faas import WASM
from repro.net import SizedPayload
from repro.security import Right
from repro.sim import SimulationError


@pytest.fixture
def cloud():
    return PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=0,
                     seed=99)


def test_fifo_requires_host_node(cloud):
    with pytest.raises(ValueError):
        cloud.create_object(kind=ObjectKind.FIFO)


def test_socket_requires_valid_host(cloud):
    with pytest.raises(KeyError):
        cloud.create_socket(host_node="ghost-node")


def test_replica_count_validation():
    with pytest.raises(ValueError):
        PCSICloud(racks=1, nodes_per_rack=4, gpu_nodes_per_rack=0,
                  data_replicas=0)
    with pytest.raises(ValueError):
        PCSICloud(racks=1, nodes_per_rack=2, gpu_nodes_per_rack=0,
                  data_replicas=5)


def test_data_replicas_spread_across_racks():
    cloud = PCSICloud(racks=3, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      data_replicas=3)
    racks = {cloud.topology.node(nid).rack
             for nid in cloud.data.store.replica_nodes}
    assert len(racks) == 3


def test_resolve_empty_path_returns_root(cloud):
    root = cloud.create_root("t")
    ref = cloud.run_process(cloud.resolve(root, ""))
    assert ref.object_id == root.object_id


def test_socket_external_roundtrip(cloud):
    sock = cloud.create_socket(host_node="rack0-n0")
    server_node = "rack1-n0"
    cloud.external_send(sock, SizedPayload(100, meta="req"))

    def server():
        req = yield from cloud.op_socket_recv(server_node, sock)
        yield from cloud.op_socket_send(server_node, sock,
                                        SizedPayload(20, meta="resp"))
        return req

    def client():
        resp = yield from cloud.external_recv(sock)
        return resp

    server_proc = cloud.sim.spawn(server())
    client_proc = cloud.sim.spawn(client())
    cloud.sim.run()
    assert server_proc.value.meta == "req"
    assert client_proc.value.meta == "resp"


def test_socket_ops_reject_wrong_kind(cloud):
    plain = cloud.create_object()

    def flow():
        yield from cloud.op_socket_recv("rack0-n0", plain)

    with pytest.raises(ObjectTypeError):
        cloud.run_process(flow())


def test_fifo_ops_reject_wrong_kind(cloud):
    plain = cloud.create_object()

    def flow():
        yield from cloud.op_fifo_put("rack0-n0", plain, SizedPayload(1))

    with pytest.raises(ObjectTypeError):
        cloud.run_process(flow())


def test_function_def_accessor(cloud):
    fn = cloud.define_function(
        "f", [FunctionImpl("wasm", WASM, cpu_task())])
    assert cloud.function_def(fn).name == "f"
    plain = cloud.create_object()
    with pytest.raises(ObjectTypeError):
        cloud.function_def(plain)


def test_ops_on_deleted_object_raise(cloud):
    ref = cloud.create_object()
    cloud.table.remove(ref.object_id)

    def flow():
        yield from cloud.op_read(cloud.client_node(), ref)

    with pytest.raises(ObjectNotFoundError):
        cloud.run_process(flow())


def test_mutability_inspection_and_rights(cloud):
    from repro.core import Mutability
    ref = cloud.create_object()
    assert cloud.mutability_of(ref) == Mutability.MUTABLE
    cloud.transition(ref, Mutability.IMMUTABLE)
    assert cloud.mutability_of(ref) == Mutability.IMMUTABLE


def test_run_process_limit(cloud):
    def forever():
        yield cloud.sim.event()  # never fires

    with pytest.raises(SimulationError):
        cloud.run_process(forever())


def test_client_node_is_cpu_only(cloud):
    node = cloud.topology.node(cloud.client_node())
    assert not node.has_device("gpu")


def test_custom_topology_injection():
    from repro.cluster import build_cluster
    from repro.sim import Simulator
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=3,
                         gpu_nodes_per_rack=0)
    cloud = PCSICloud(sim, topology=topo)
    assert cloud.topology is topo
    assert len(cloud.topology.nodes) == 6


def test_mount_union_requires_rights(cloud):
    from repro.security import AccessDeniedError
    upper = cloud.mkdir(rights=Right.READ)
    lower = cloud.mkdir()
    with pytest.raises(AccessDeniedError):
        cloud.mount_union(upper, [lower])


def test_device_service_vanishing(cloud):
    """A device object whose service mapping breaks errs explicitly."""
    from repro.crdt import ReplicatedCRDTService
    svc = ReplicatedCRDTService(cloud.sim, cloud.network, ["rack0-n0"])
    cloud.register_device_service("crdt", svc)
    dev = cloud.create_device("crdt")
    cloud.table.get(dev.object_id).meta = {"service": "gone"}

    def flow():
        yield from cloud.op_device(cloud.client_node(), dev, "read",
                                   {"name": "x"})

    with pytest.raises(ObjectNotFoundError):
        cloud.run_process(flow())


def test_eventual_object_read_your_own_write_from_same_node(cloud):
    """Eventual consistency still gives read-your-writes when the
    reader's closest replica is the one that took the write."""
    ref = cloud.create_object(consistency=Consistency.EVENTUAL)
    node = cloud.data.store.replica_nodes[0]

    def flow():
        yield from cloud.op_write(node, ref, SizedPayload(64, meta="v"))
        payload = yield from cloud.op_read(node, ref)
        return payload

    assert cloud.run_process(flow()).meta == "v"
