"""Tests for function definitions, invocation, and the syscall surface."""

import pytest

from repro.cluster import cpu_task, gpu_task
from repro.core import (
    Consistency,
    FunctionDef,
    FunctionImpl,
    InvocationError,
    Mutability,
    ObjectTypeError,
    PCSICloud,
)
from repro.faas import CONTAINER, GPU_CONTAINER, WASM
from repro.net import SizedPayload
from repro.security import AccessDeniedError, Right


@pytest.fixture
def cloud():
    return PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=1,
                     seed=11, keep_alive=300.0)


def wasm_impl(work=1e8):
    return FunctionImpl("wasm", WASM, cpu_task(cpus=1, memory_gb=0.5),
                        work_ops=work)


def run(cloud, gen):
    return cloud.run_process(gen)


# -------------------------------------------------------------- FunctionDef
def test_function_def_needs_impls():
    with pytest.raises(InvocationError):
        FunctionDef(name="empty", impls=[])


def test_function_def_duplicate_impl_names():
    with pytest.raises(InvocationError):
        FunctionDef(name="dup", impls=[wasm_impl(), wasm_impl()])


def test_impl_replace_and_add():
    fn = FunctionDef(name="f", impls=[wasm_impl()])
    gpu = FunctionImpl("gpu", GPU_CONTAINER, gpu_task(), work_ops=1e8)
    fn.add_impl(gpu)
    assert len(fn.impls) == 2
    with pytest.raises(InvocationError):
        fn.add_impl(gpu)
    faster = FunctionImpl("gpu", GPU_CONTAINER, gpu_task(), work_ops=5e7)
    fn.replace_impl("gpu", faster)
    assert fn.impl_named("gpu").work_ops == 5e7
    with pytest.raises(InvocationError):
        fn.replace_impl("missing", faster)


def test_impl_validation():
    with pytest.raises(ValueError):
        FunctionImpl("bad", WASM, cpu_task(), work_ops=-1)


# ---------------------------------------------------------------- invocation
def test_invoke_default_body_reads_and_writes(cloud):
    src = cloud.create_object()
    dst = cloud.create_object()
    cloud.preload(src, SizedPayload(10_000))
    fn = cloud.define_function(
        "copy", [wasm_impl()], reads=["in"], writes=["out"],
        output_nbytes=lambda nbytes, req: nbytes // 2)
    client = cloud.client_node()

    def flow():
        result = yield from cloud.invoke(client, fn,
                                         {"in": src, "out": dst})
        payload = yield from cloud.op_read(client, dst)
        return result, payload

    result, payload = run(cloud, flow())
    assert result == {"bytes_in": 10_000, "bytes_out": 5_000}
    assert payload.nbytes == 5_000


def test_invoke_requires_execute_right(cloud):
    fn = cloud.define_function("f", [wasm_impl()])
    weak = fn.attenuate(Right.READ)
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, weak)

    with pytest.raises(AccessDeniedError):
        run(cloud, flow())


def test_invoke_non_function_object_rejected(cloud):
    ref = cloud.create_object()
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, ref)

    with pytest.raises(ObjectTypeError):
        run(cloud, flow())


def test_request_body_size_limit(cloud):
    fn = cloud.define_function("f", [wasm_impl()])
    client = cloud.client_node()
    huge = {"blob": "x" * 100_000}

    def flow():
        yield from cloud.invoke(client, fn, {}, huge)

    with pytest.raises(InvocationError, match="pass-by-value"):
        run(cloud, flow())


def test_function_objects_are_immutable(cloud):
    fn = cloud.define_function("f", [wasm_impl()])
    assert cloud.mutability_of(fn) == Mutability.IMMUTABLE


def test_programmable_body_syscalls(cloud):
    """A body exercising reads, computes, appends, and FIFOs."""
    data = cloud.create_object()
    log = cloud.create_object(mutability=Mutability.APPEND_ONLY)
    fifo = cloud.create_fifo(host_node="rack0-n1")
    cloud.preload(data, SizedPayload(2048))

    def body(ctx):
        payload = yield from ctx.read(ctx.args["data"])
        yield from ctx.compute(1e7)
        yield from ctx.append(ctx.args["log"],
                              SizedPayload(64, meta="entry"))
        yield from ctx.fifo_put(ctx.args["fifo"],
                                SizedPayload(payload.nbytes // 2))
        return {"processed": payload.nbytes}

    fn = cloud.define_function("pipeline-stage", [wasm_impl()], body=body)
    client = cloud.client_node()

    def flow():
        result = yield from cloud.invoke(
            client, fn, {"data": data, "log": log, "fifo": fifo})
        item = yield from cloud.op_fifo_get(client, fifo)
        return result, item

    result, item = run(cloud, flow())
    assert result == {"processed": 2048}
    assert item.nbytes == 1024


def test_nested_invoke_dynamic_graph(cloud):
    """ctx.invoke spawns children at run time (Ray/Ciel style)."""
    leaf = cloud.define_function("leaf", [wasm_impl(work=1e6)])

    def parent_body(ctx):
        total = 0
        for _ in range(3):
            result = yield from ctx.invoke(ctx.request["leaf_ref"], {}, {})
            total += result["bytes_out"]
        return {"children": 3, "total": total}

    # Pass the leaf reference through request plumbing (small value).
    parent = cloud.define_function("parent", [wasm_impl()],
                                   body=parent_body)
    client = cloud.client_node()

    def flow():
        result = yield from cloud.invoke(client, parent, {},
                                         {"leaf_ref": leaf})
        return result

    result = run(cloud, flow())
    assert result["children"] == 3
    assert len([i for i in cloud.scheduler.history
                if i.fn_name == "leaf"]) == 3


def test_invoke_async_parallel_children(cloud):
    leaf = cloud.define_function("leaf", [wasm_impl(work=5e9)])

    def parent_body(ctx):
        futures = [ctx.invoke_async(ctx.request["leaf_ref"])
                   for _ in range(3)]
        results = []
        for fut in futures:
            results.append((yield fut))
        return {"n": len(results)}

    parent = cloud.define_function("parent", [wasm_impl()],
                                   body=parent_body)
    client = cloud.client_node()

    def flow():
        t0 = cloud.sim.now
        result = yield from cloud.invoke(client, parent, {},
                                         {"leaf_ref": leaf})
        return result, cloud.sim.now - t0

    result, elapsed = run(cloud, flow())
    assert result == {"n": 3}
    leaf_invs = [i for i in cloud.scheduler.history if i.fn_name == "leaf"]
    # Async children overlap: total wall time is far less than the sum
    # of the three service times.
    assert elapsed < sum(i.service_time for i in leaf_invs) * 0.9


def test_warm_pool_avoids_second_cold_start(cloud):
    fn = cloud.define_function("f", [wasm_impl()])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)
        yield from cloud.invoke(client, fn)

    run(cloud, flow())
    invs = cloud.scheduler.history
    assert invs[0].cold_start is True
    assert invs[1].cold_start is False
    assert invs[1].latency < invs[0].latency


def test_invocation_metering(cloud):
    fn = cloud.define_function("f", [wasm_impl(work=5e9)])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)

    run(cloud, flow())
    assert cloud.meter.units("compute.requests") == 1
    assert cloud.meter.usd("compute.duration") > 0


def test_invocation_latency_accounting(cloud):
    fn = cloud.define_function("f", [wasm_impl(work=1e9)])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)

    run(cloud, flow())
    inv = cloud.scheduler.history[-1]
    assert inv.latency >= inv.service_time > 0
    assert cloud.metrics.histogram("invoke.f").count == 1
