"""Differential pin: ``health=None`` is byte-identical to the seed.

The health plane (detector, breakers, ejection, crash recovery) hooks
into the scheduler's attempt path, the placement candidate filter, the
warm pool's idle scan, and the gateway's admission check. All of those
hooks are guarded on ``kernel.health is not None`` — so a cloud built
without a health plane must replay the pre-health-plane event sequence
*bit for bit*: same outcomes, same latencies, same simulator event
count, same virtual clock.

The fingerprint below was captured from the seed code before the
health plane existed (the workload deliberately exercises every hooked
path: retries over a mid-run node crash, deadline expiries, warm-pool
queueing, and placement around a dead node). If it ever drifts, a
health-plane hook leaked into the default path.
"""

import hashlib
import json

from repro.cluster.failures import FailureInjector
from repro.cluster.resources import cpu_task, server_node
from repro.cluster.topology import build_cluster
from repro.core.functions import FunctionImpl
from repro.core.retry import RetryPolicy
from repro.core.system import PCSICloud
from repro.faas.platforms import WASM
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStream

#: Captured on the seed code (pre-health-plane), pinned forever.
SEED_FINGERPRINT = "94dcd0b63a6197f8"


def run_seed_workload(**cloud_kwargs) -> str:
    """A pinned mini-workload through every health-hooked code path.

    40 Poisson arrivals (alternating deadline / no deadline, every
    third with retries) against a small all-CPU cluster; one node is
    crashed mid-run so retries, placement around a corpse, and the
    pool's dead-node release path all execute. Returns a digest of
    every outcome kind and exact latency plus the simulator's final
    event count and clock.
    """
    sim = Simulator()
    topo = build_cluster(sim, racks=2, nodes_per_rack=4,
                         gpu_nodes_per_rack=0,
                         node_capacity=server_node(cpus=1, memory_gb=4))
    cloud = PCSICloud(sim, seed=73, keep_alive=600.0, topology=topo,
                      data_replicas=1, **cloud_kwargs)
    cloud.scheduler.control_node = cloud.client_node()
    fn = cloud.define_function(
        "front", [FunctionImpl("wasm", WASM,
                               cpu_task(cpus=1, memory_gb=1),
                               work_ops=2.5e9)])
    client = cloud.client_node()
    injector = FailureInjector(sim, topo)
    injector.crash_node("rack0-n1", at=0.6)
    rng = RandomStream(73, "diff-arrivals")
    outcomes = []

    def request(i: int):
        start = sim.now
        deadline = 0.5 if i % 2 else None
        retry = RetryPolicy(max_attempts=3) if i % 3 == 0 else None
        try:
            yield from cloud.invoke(client, fn, deadline=deadline,
                                    retry=retry)
        except Exception as exc:  # noqa: BLE001 - outcome recorded
            outcomes.append((type(exc).__name__, repr(sim.now - start)))
            return
        outcomes.append(("ok", repr(sim.now - start)))

    def arrivals():
        for i in range(40):
            yield sim.timeout(rng.exponential(1.0 / 30.0))
            sim.spawn(request(i), name=f"diff-{i}")

    sim.spawn(arrivals(), name="diff-load")
    cloud.run()
    payload = json.dumps([outcomes, sim._seq, repr(sim.now)],
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def test_health_off_matches_seed_fingerprint():
    """No health plane configured -> the seed event sequence, exactly."""
    assert run_seed_workload() == SEED_FINGERPRINT


def test_health_off_is_default():
    cloud = PCSICloud(racks=1, nodes_per_rack=2, gpu_nodes_per_rack=0,
                      data_replicas=1)
    assert cloud.health is None
