"""Tests for SLO-aware implementation selection and invocation retries."""

import pytest

from repro.cluster import NetworkUnreachableError, cpu_task, gpu_task
from repro.core import (
    Consistency,
    FunctionDef,
    FunctionImpl,
    ImplOptimizer,
    PCSICloud,
)
from repro.cluster.failures import FailureInjector
from repro.faas import GPU_CONTAINER, WASM
from repro.net import SizedPayload
from repro.storage import QuorumUnavailableError


def cheap_slow_impl(work=5e10):
    """~1.4 s on wasm, pennies."""
    return FunctionImpl("wasm", WASM, cpu_task(cpus=1, memory_gb=0.5),
                        work_ops=work)


def fast_pricey_impl(work=5e10):
    """~50 ms on a GPU, with the accelerator surcharge."""
    return FunctionImpl("gpu", GPU_CONTAINER, gpu_task(), work_ops=work)


# ---------------------------------------------------------------- SLO menu
def test_slo_validation():
    with pytest.raises(ValueError):
        ImplOptimizer(slo=0)


def test_loose_slo_picks_cheapest_qualifier():
    """With 'good enough' defined loosely, the cheap impl wins even
    under a latency-oriented deployment (§4.2)."""
    fn = FunctionDef(name="f", impls=[cheap_slow_impl(),
                                      fast_pricey_impl()])
    opt = ImplOptimizer(goal="latency", slo=10.0,
                        cold_start_amortization=1000)
    assert opt.choose(fn, {}).name == "wasm"


def test_tight_slo_forces_fast_impl():
    fn = FunctionDef(name="f", impls=[cheap_slow_impl(),
                                      fast_pricey_impl()])
    opt = ImplOptimizer(goal="cost", slo=0.5,
                        cold_start_amortization=1000)
    assert opt.choose(fn, {}).name == "gpu"


def test_impossible_slo_falls_back_to_fastest():
    fn = FunctionDef(name="f", impls=[cheap_slow_impl(),
                                      fast_pricey_impl()])
    opt = ImplOptimizer(goal="cost", slo=1e-6,
                        cold_start_amortization=1000)
    assert opt.choose(fn, {}).name == "gpu"


def test_slo_threads_through_cloud():
    cloud = PCSICloud(racks=2, nodes_per_rack=4, gpu_nodes_per_rack=1,
                      seed=21, goal="cost", slo=10.0)
    assert cloud.optimizer.slo == 10.0
    fn = cloud.define_function("f", [cheap_slow_impl(work=1e9),
                                     fast_pricey_impl(work=1e9)])
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, fn)

    cloud.run_process(flow())
    assert cloud.scheduler.history[-1].impl_name == "wasm"


# ------------------------------------------------------------------ retries
def make_failing_cloud():
    """A cloud whose data replicas are partitioned away for a while."""
    cloud = PCSICloud(racks=3, nodes_per_rack=4, gpu_nodes_per_rack=0,
                      seed=22, keep_alive=600.0)
    return cloud


def test_retry_validation():
    cloud = make_failing_cloud()
    fn = cloud.define_function("f", [cheap_slow_impl(work=0)])
    client = cloud.client_node()
    with pytest.raises(ValueError):
        cloud.run_process(cloud.scheduler.invoke(client, fn, {}, {},
                                                 max_attempts=0))


def test_invocation_retries_after_quorum_returns():
    """A read hitting a lost quorum fails the attempt; the retry after
    the partition heals succeeds — safely, because the function holds
    no implicit state."""
    cloud = make_failing_cloud()
    data = cloud.create_object(consistency=Consistency.LINEARIZABLE)
    cloud.preload(data, SizedPayload(512))

    def body(ctx):
        payload = yield from ctx.read(ctx.args["data"])
        return {"n": payload.nbytes}

    fn = cloud.define_function("reader", [cheap_slow_impl(work=0)],
                               body=body)
    client = cloud.client_node()

    # Cut two of the three data replicas off from everything else for
    # a moment: linearizable reads lose their quorum.
    replicas = cloud.data.store.replica_nodes
    others = {n.node_id for n in cloud.topology.nodes
              if n.node_id not in replicas[:2]}
    inj = FailureInjector(cloud.sim, cloud.topology, cloud.network)
    inj.partition(set(replicas[:2]), others, at=0.0, heal_at=3.0)

    def flow():
        result = yield from cloud.scheduler.invoke(
            client, fn, {"data": data}, {}, max_attempts=50)
        return result

    result = cloud.run_process(flow())
    assert result == {"n": 512}
    assert cloud.metrics.counter("invoke.retries").value >= 1
    assert cloud.sim.now >= 3.0  # success only after the heal


def test_no_retries_by_default():
    cloud = make_failing_cloud()
    data = cloud.create_object(consistency=Consistency.LINEARIZABLE)
    cloud.preload(data, SizedPayload(512))

    def body(ctx):
        payload = yield from ctx.read(ctx.args["data"])
        return {"n": payload.nbytes}

    fn = cloud.define_function("reader", [cheap_slow_impl(work=0)],
                               body=body)
    client = cloud.client_node()
    replicas = cloud.data.store.replica_nodes
    others = {n.node_id for n in cloud.topology.nodes
              if n.node_id not in replicas[:2]}
    inj = FailureInjector(cloud.sim, cloud.topology, cloud.network)
    inj.partition(set(replicas[:2]), others, at=0.0, heal_at=30.0)

    def flow():
        yield from cloud.invoke(client, fn, {"data": data})

    with pytest.raises((NetworkUnreachableError, QuorumUnavailableError)):
        cloud.run_process(flow())


def test_application_errors_never_retried():
    cloud = make_failing_cloud()
    attempts = []

    def body(ctx):
        attempts.append(1)
        yield ctx._kernel.sim.timeout(0)
        raise KeyError("app bug")

    fn = cloud.define_function("buggy", [cheap_slow_impl(work=0)],
                               body=body)
    client = cloud.client_node()

    def flow():
        yield from cloud.scheduler.invoke(client, fn, {}, {},
                                          max_attempts=5)

    with pytest.raises(KeyError):
        cloud.run_process(flow())
    assert len(attempts) == 1  # not retried


def test_pool_skips_executors_on_dead_nodes():
    cloud = make_failing_cloud()
    fn = cloud.define_function("f", [cheap_slow_impl(work=1e8)])
    client = cloud.client_node()

    def first():
        yield from cloud.invoke(client, fn)

    # Keep the control plane away from the node we are going to crash.
    cloud.scheduler.control_node = client
    cloud.run_process(first())
    first_node = cloud.scheduler.history[-1].executor_node
    assert first_node != client
    cloud.topology.node(first_node).crash()

    def second():
        yield from cloud.invoke(client, fn)

    cloud.run_process(second())
    second_inv = cloud.scheduler.history[-1]
    assert second_inv.executor_node != first_node
    assert second_inv.cold_start  # the stranded sandbox was not reused
