"""Tail-aware control loops: tail_latency, adaptive hedging, p99 goal."""

import pytest

from repro.bench.attribution import LatencyAttributor
from repro.cluster import build_cluster, cpu_task, server_node
from repro.core import FunctionImpl, PCSICloud
from repro.core.optimizer import ImplOptimizer
from repro.core.retry import RetryPolicy
from repro.faas import WASM
from repro.sim import Simulator
from repro.sim.trace import Tracer


def feed(attributor, fn, impl, warm_latencies, node_class="all"):
    """Fold synthetic warm observations into one attribution key."""
    from repro.bench.attribution import AttributionStats
    key = (fn, impl, node_class)
    stats = attributor._stats.get(key)
    if stats is None:
        stats = attributor._stats[key] = AttributionStats()
    for warm in warm_latencies:
        stats.update({"execute": warm}, cold=False,
                     alpha=attributor.alpha)
        attributor.observed_invokes += 1


# -- RetryPolicy validation -------------------------------------------------

def test_policy_defaults_to_fixed_mode():
    policy = RetryPolicy(hedge_delay=0.1)
    assert policy.hedge_mode == "fixed"


def test_policy_rejects_bad_hedge_settings():
    with pytest.raises(ValueError):
        RetryPolicy(hedge_delay=0.1, hedge_mode="p99")
    with pytest.raises(ValueError):
        RetryPolicy(hedge_mode="adaptive")  # adaptive needs a fallback
    with pytest.raises(ValueError):
        RetryPolicy(hedge_delay=0.1, hedge_mode="adaptive",
                    hedge_quantile=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(hedge_delay=0.1, hedge_mode="adaptive",
                    hedge_quantile=101.0)
    with pytest.raises(ValueError):
        RetryPolicy(hedge_delay=0.1, hedge_mode="adaptive",
                    hedge_min_samples=0)


# -- attributor tail quantiles ----------------------------------------------

def test_tail_latency_reads_the_observed_quantile():
    attr = LatencyAttributor(Tracer(enabled=True))
    feed(attr, "serve", "fast", [0.010] * 95 + [0.500] * 5)
    p50 = attr.tail_latency("serve", "fast", q=50.0)
    p99 = attr.tail_latency("serve", "fast", q=99.0)
    assert p50 == pytest.approx(0.010, rel=0.02)
    assert p99 == pytest.approx(0.500, rel=0.02)


def test_tail_latency_merges_across_impls_and_node_classes():
    attr = LatencyAttributor(Tracer(enabled=True))
    feed(attr, "serve", "a", [0.010] * 98, node_class="cpu")
    feed(attr, "serve", "b", [1.000] * 2, node_class="gpu")
    # Merged across every impl/class: rank 0.99*(100-1) lands on the
    # slow key's observations, the true p99 of the combined stream.
    assert attr.tail_latency("serve", q=99.0) == pytest.approx(1.0,
                                                               rel=0.02)
    # Narrowed to one impl, the slow key disappears.
    assert attr.tail_latency("serve", "a", q=99.0) == \
        pytest.approx(0.010, rel=0.02)
    assert attr.tail_latency("serve", node_class="gpu", q=50.0) == \
        pytest.approx(1.0, rel=0.02)


def test_tail_latency_none_without_observations():
    attr = LatencyAttributor(Tracer(enabled=True))
    assert attr.tail_latency("never-seen") is None


def test_attribution_export_carries_warm_tail():
    attr = LatencyAttributor(Tracer(enabled=True))
    feed(attr, "serve", "fast", [0.010] * 10)
    doc = attr.to_json()
    tail = doc["keys"]["serve/fast@all"]["warm_tail_s"]
    assert set(tail) == {"q50", "q90", "q99"}
    assert tail["q99"] == pytest.approx(0.010, rel=0.02)


# -- adaptive hedge arming --------------------------------------------------

def make_small_cloud():
    sim = Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=2,
                         gpu_nodes_per_rack=0,
                         node_capacity=server_node(cpus=1, memory_gb=4))
    cloud = PCSICloud(sim, seed=7, topology=topo, data_replicas=1,
                      trace=True, attribution=True)
    fn_ref = cloud.define_function("serve", [
        FunctionImpl("wasm", WASM, cpu_task(cpus=1, memory_gb=1),
                     work_ops=1e6)])
    return cloud, cloud.function_def(fn_ref)


def test_fixed_mode_returns_the_policy_delay_untouched():
    cloud, fn_def = make_small_cloud()
    policy = RetryPolicy(hedge_delay=0.25)
    feed(cloud.attributor, "serve", "wasm", [0.010] * 100)
    assert cloud.scheduler._hedge_delay(fn_def, policy) == 0.25


def test_adaptive_mode_falls_back_below_min_samples():
    cloud, fn_def = make_small_cloud()
    policy = RetryPolicy(hedge_delay=0.25, hedge_mode="adaptive",
                         hedge_min_samples=50)
    feed(cloud.attributor, "serve", "wasm", [0.010] * 49)
    assert cloud.scheduler._hedge_delay(fn_def, policy) == 0.25


def test_adaptive_mode_arms_at_the_observed_quantile():
    cloud, fn_def = make_small_cloud()
    policy = RetryPolicy(hedge_delay=0.25, hedge_mode="adaptive",
                         hedge_quantile=99.0, hedge_min_samples=50)
    feed(cloud.attributor, "serve", "wasm", [0.010] * 95 + [0.100] * 5)
    delay = cloud.scheduler._hedge_delay(fn_def, policy)
    assert delay == pytest.approx(0.100, rel=0.02)


def test_adaptive_min_samples_defaults_to_the_attributor_guard():
    cloud, fn_def = make_small_cloud()
    policy = RetryPolicy(hedge_delay=0.25, hedge_mode="adaptive")
    need = cloud.attributor.min_samples
    feed(cloud.attributor, "serve", "wasm", [0.010] * (need - 1))
    assert cloud.scheduler._hedge_delay(fn_def, policy) == 0.25
    feed(cloud.attributor, "serve", "wasm", [0.010])
    assert cloud.scheduler._hedge_delay(fn_def, policy) == \
        pytest.approx(0.010, rel=0.02)


def test_adaptive_hedging_end_to_end_is_deterministic():
    from repro.bench.experiments.e26_tail import run_hedge_arm
    a = run_hedge_arm("adaptive")
    b = run_hedge_arm("adaptive")
    assert a["latencies"] == b["latencies"]
    assert a["hedges"] == b["hedges"]


# -- optimizer objective ----------------------------------------------------

def test_p99_objective_requires_ema_mode():
    with pytest.raises(ValueError):
        ImplOptimizer(objective="p99")
    with pytest.raises(ValueError):
        ImplOptimizer(objective="latency-ish")
    with pytest.raises(ValueError):
        PCSICloud(racks=1, nodes_per_rack=2, gpu_nodes_per_rack=0,
                  seed=7, objective="p99")  # static observation mode


def test_p99_objective_prefers_the_tight_tail_impl():
    """Mean steering picks the lower-mean fat-tail impl; p99 steering
    the higher-mean tight-tail one, from identical observations."""
    for objective, expected in (("mean", "fat"), ("p99", "tight")):
        sim = Simulator()
        cloud = PCSICloud(sim, racks=1, nodes_per_rack=2,
                          gpu_nodes_per_rack=0, seed=7, trace=True,
                          data_replicas=1, observation_mode="ema",
                          objective=objective)
        fn_ref = cloud.define_function("serve", [
            FunctionImpl("fat", WASM, cpu_task(cpus=1, memory_gb=1),
                         work_ops=1e6),
            FunctionImpl("tight", WASM, cpu_task(cpus=1, memory_gb=1),
                         work_ops=1e6)])
        fn_def = cloud.function_def(fn_ref)
        # fat: spikes early, then a long fast run — its warm EMA
        # settles near 10 ms while its sketch still remembers the
        # 100 ms tail; tight: constant 20 ms.
        feed(cloud.attributor, "serve", "fat",
             [0.100] * 5 + [0.010] * 95)
        feed(cloud.attributor, "serve", "tight", [0.020] * 100)
        chosen = cloud.optimizer.choose(fn_def, {})
        assert chosen.name == expected, objective
