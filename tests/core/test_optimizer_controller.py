"""ImplOptimizer estimate/rank/choose under controller-mutated pools.

The autoscale controller now changes pool state out from under the
optimizer — prewarming executors, shrinking idle ones, holding floors.
The optimizer's warmth model must track those mutations: a prewarmed
pool estimates warm (no startup charge), a shrunk-to-zero pool
estimates cold again, and ``choose`` migrates accordingly.
"""

import pytest

from repro.cluster import build_cluster, cpu_task
from repro.core.functions import FunctionDef, FunctionImpl
from repro.core.optimizer import ImplOptimizer
from repro.faas import CONTAINER, WASM, WarmPool
from repro.sim import Simulator


def first_fit_placer(topo):
    def place(resources, platform, preferred_node=None):
        for node in topo.live_nodes():
            if node.has_device(platform.device_kind) \
                    and node.can_fit(resources):
                return node
        return None
    return place


@pytest.fixture
def rig():
    sim = Simulator()
    topo = build_cluster(sim, racks=1, nodes_per_rack=4,
                         gpu_nodes_per_rack=0)
    resources = cpu_task(cpus=1, memory_gb=1)
    container = FunctionImpl("container", CONTAINER, resources,
                             work_ops=5e9)
    wasm = FunctionImpl("wasm", WASM, resources, work_ops=5e9)
    fn_def = FunctionDef(name="fn", impls=[container, wasm])
    pools = {impl.name: WarmPool(sim, f"fn/{impl.name}", impl.platform,
                                 resources,
                                 placer=first_fit_placer(topo),
                                 keep_alive=100.0)
             for impl in fn_def.impls}
    return sim, fn_def, pools


def prewarm(sim, pool):
    executor = sim.run_until_event(sim.spawn(pool.prewarm()))
    assert executor is not None
    return executor


def test_prewarmed_pool_estimates_warm(rig):
    sim, fn_def, pools = rig
    opt = ImplOptimizer(goal="latency")
    container = fn_def.impl_named("container")

    cold = opt.estimate(container, pools["container"])
    assert not cold.warm
    assert cold.est_latency >= CONTAINER.cold_start

    prewarm(sim, pools["container"])
    warm = opt.estimate(container, pools["container"])
    assert warm.warm
    # The whole cold-start charge disappeared from the estimate.
    assert cold.est_latency - warm.est_latency \
        == pytest.approx(CONTAINER.cold_start)


def test_choose_migrates_to_prewarmed_impl(rig):
    """Cold everywhere, the fast-booting wasm impl wins; once the
    controller prewarms the container pool, choose() migrates —
    warmth beats boot speed."""
    sim, fn_def, pools = rig
    opt = ImplOptimizer(goal="latency")
    assert opt.choose(fn_def, pools).name == "wasm"

    prewarm(sim, pools["container"])
    assert opt.choose(fn_def, pools).name == "container"


def test_shrink_reverts_the_estimate_to_cold(rig):
    sim, fn_def, pools = rig
    opt = ImplOptimizer(goal="latency")
    pool = pools["container"]
    prewarm(sim, pool)
    assert opt.estimate(fn_def.impl_named("container"), pool).warm
    assert pool.shrink(1) == 1
    assert not opt.estimate(fn_def.impl_named("container"), pool).warm


def test_busy_pool_is_not_warm_for_the_optimizer(rig):
    """Warmth means an *idle* executor is available now; a pool whose
    only executor is claimed estimates cold-start latency again."""
    sim, fn_def, pools = rig
    opt = ImplOptimizer(goal="latency")
    pool = pools["container"]
    executor = prewarm(sim, pool)
    executor.mark_busy()
    assert not opt.estimate(fn_def.impl_named("container"), pool).warm
    executor.mark_idle()
    assert opt.estimate(fn_def.impl_named("container"), pool).warm


def test_rank_orders_by_goal_under_mixed_warmth(rig):
    sim, fn_def, pools = rig
    prewarm(sim, pools["container"])
    ranked = ImplOptimizer(goal="latency").rank(fn_def, pools)
    assert [e.impl.name for e in ranked] == ["container", "wasm"]
    assert ranked[0].warm and not ranked[1].warm
    # Cost goal is indifferent to warmth (pay-per-use bills runtime),
    # so the cheaper wasm impl still ranks first.
    by_cost = ImplOptimizer(goal="cost").rank(fn_def, pools)
    assert by_cost[0].est_cost <= by_cost[1].est_cost


def test_target_floor_keeps_estimate_warm_across_reap_window(rig):
    """A controller floor (target_warm) vetoes the keep-alive reaper,
    so the optimizer keeps seeing a warm pool for as long as the
    controller holds the floor."""
    sim, fn_def, pools = rig
    pool = pools["container"]
    pool.set_keep_alive(0.1)
    pool.target_warm = 1
    prewarm(sim, pool)
    sim.run()  # reap window passes; the floor vetoes the reap
    opt = ImplOptimizer(goal="latency")
    assert opt.estimate(fn_def.impl_named("container"), pool).warm
