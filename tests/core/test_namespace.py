"""Tests for naming, resolution, and union file systems."""

import pytest

from repro.core import (
    NamespaceError,
    ObjectKind,
    ObjectNotFoundError,
    PCSICloud,
)
from repro.core.errors import NotADirectoryError_
from repro.core.namespace import split_path
from repro.security import AccessDeniedError, Right


@pytest.fixture
def cloud():
    return PCSICloud(racks=2, nodes_per_rack=2, gpu_nodes_per_rack=0,
                     data_replicas=3, seed=7)


def resolve(cloud, root, path):
    return cloud.run_process(cloud.resolve(root, path))


# ----------------------------------------------------------------- paths
def test_split_path_rejects_absolute():
    with pytest.raises(NamespaceError):
        split_path("/etc/passwd")


def test_split_path_rejects_dotdot():
    with pytest.raises(NamespaceError):
        split_path("a/../b")


def test_split_path_normalizes():
    assert split_path("a//b/./c") == ["a", "b", "c"]
    assert split_path("") == []


# -------------------------------------------------------------- resolution
def test_link_and_resolve(cloud):
    root = cloud.create_root("alice")
    f = cloud.create_object()
    sub = cloud.mkdir()
    cloud.link(root, "sub", sub)
    cloud.link(sub, "file", f)
    ref = resolve(cloud, root, "sub/file")
    assert ref.object_id == f.object_id


def test_resolve_missing_raises(cloud):
    root = cloud.create_root("alice")
    with pytest.raises(ObjectNotFoundError):
        resolve(cloud, root, "nope")


def test_resolve_through_file_raises(cloud):
    root = cloud.create_root("alice")
    f = cloud.create_object()
    cloud.link(root, "f", f)
    with pytest.raises(NotADirectoryError_):
        resolve(cloud, root, "f/deeper")


def test_resolution_attenuates_rights(cloud):
    """Rights narrow along the path: the entry's rights bound the
    resolved reference."""
    root = cloud.create_root("alice")
    f = cloud.create_object()
    cloud.link(root, "readonly", f, rights=Right.READ | Right.RESOLVE)
    ref = resolve(cloud, root, "readonly")
    assert ref.allows(Right.READ)
    assert not ref.allows(Right.WRITE)


def test_resolution_requires_resolve_right(cloud):
    root = cloud.create_root("alice")
    sub = cloud.mkdir()
    f = cloud.create_object()
    # Link the subdirectory without RESOLVE: traversal must stop there.
    cloud.link(root, "sub", sub, rights=Right.READ)
    cloud.link(sub, "f", f)
    with pytest.raises(NamespaceError):
        resolve(cloud, root, "sub/f")


def test_resolution_charges_per_step(cloud):
    from repro.core.namespace import RESOLVE_STEP_TIME
    root = cloud.create_root("alice")
    d1 = cloud.mkdir()
    d2 = cloud.mkdir()
    f = cloud.create_object()
    cloud.link(root, "a", d1)
    cloud.link(d1, "b", d2)
    cloud.link(d2, "c", f)
    t0 = cloud.sim.now
    resolve(cloud, root, "a/b/c")
    assert cloud.sim.now - t0 == pytest.approx(3 * RESOLVE_STEP_TIME)


def test_no_global_namespace(cloud):
    """Two tenants' roots are disjoint: names in one resolve nothing in
    the other."""
    alice = cloud.create_root("alice")
    bob = cloud.create_root("bob")
    f = cloud.create_object()
    cloud.link(alice, "secret", f)
    with pytest.raises(ObjectNotFoundError):
        resolve(cloud, bob, "secret")


# ------------------------------------------------------------------- links
def test_link_validation(cloud):
    root = cloud.create_root("alice")
    f = cloud.create_object()
    with pytest.raises(NamespaceError):
        cloud.link(root, "a/b", f)
    with pytest.raises(NamespaceError):
        cloud.link(root, "", f)
    cloud.link(root, "x", f)
    with pytest.raises(NamespaceError):
        cloud.link(root, "x", f)  # duplicate


def test_link_cannot_amplify_rights(cloud):
    root = cloud.create_root("alice")
    f = cloud.create_object(rights=Right.READ)
    with pytest.raises(NamespaceError):
        cloud.link(root, "f", f, rights=Right.READ | Right.WRITE)


def test_unlink_and_list(cloud):
    root = cloud.create_root("alice")
    f = cloud.create_object()
    cloud.link(root, "f", f)
    assert cloud.listdir(root) == ["f"]
    cloud.unlink(root, "f")
    assert cloud.listdir(root) == []
    with pytest.raises(ObjectNotFoundError):
        cloud.unlink(root, "f")


def test_link_requires_write_on_directory(cloud):
    root = cloud.create_root("alice")
    sub = cloud.mkdir(rights=Right.READ | Right.RESOLVE)
    f = cloud.create_object()
    with pytest.raises(AccessDeniedError):
        cloud.link(sub, "f", f)


# -------------------------------------------------------------------- union
def make_layers(cloud):
    """upper over lower: lower has base+shadowed, upper has own+shadowed."""
    lower = cloud.mkdir()
    upper = cloud.mkdir()
    base = cloud.create_object()
    shadowed_low = cloud.create_object()
    shadow_high = cloud.create_object()
    own = cloud.create_object()
    cloud.link(lower, "base", base)
    cloud.link(lower, "shadowed", shadowed_low)
    cloud.link(upper, "shadowed", shadow_high)
    cloud.link(upper, "own", own)
    cloud.mount_union(upper, [lower])
    return upper, lower, {"base": base, "shadowed_low": shadowed_low,
                          "shadow_high": shadow_high, "own": own}


def test_union_lookup_upper_wins(cloud):
    upper, lower, objs = make_layers(cloud)
    ref = resolve(cloud, upper, "shadowed")
    assert ref.object_id == objs["shadow_high"].object_id


def test_union_lookup_falls_through(cloud):
    upper, lower, objs = make_layers(cloud)
    ref = resolve(cloud, upper, "base")
    assert ref.object_id == objs["base"].object_id


def test_union_list_merged(cloud):
    upper, lower, objs = make_layers(cloud)
    assert cloud.listdir(upper) == ["base", "own", "shadowed"]


def test_union_whiteout_hides_lower(cloud):
    upper, lower, objs = make_layers(cloud)
    cloud.unlink(upper, "base")  # only exists below -> whiteout
    assert "base" not in cloud.listdir(upper)
    with pytest.raises(ObjectNotFoundError):
        resolve(cloud, upper, "base")
    # The lower layer itself is untouched.
    assert "base" in cloud.listdir(lower)


def test_union_unlink_upper_reveals_nothing_when_whiteout_needed(cloud):
    upper, lower, objs = make_layers(cloud)
    # "shadowed" exists in both; removing the upper entry must hide the
    # lower one too (unlink means "gone from this namespace").
    cloud.unlink(upper, "shadowed")
    assert "shadowed" not in cloud.listdir(upper)
    assert "shadowed" in cloud.listdir(lower)


def test_union_self_layer_rejected(cloud):
    d = cloud.mkdir()
    with pytest.raises(NamespaceError):
        cloud.mount_union(d, [d])


def test_copy_up_on_write(cloud):
    from repro.net import SizedPayload
    upper, lower, objs = make_layers(cloud)
    node = cloud.client_node()

    def flow():
        yield from cloud.op_write(
            node, cloud.refs.mint(objs["base"].object_id), SizedPayload(500))
        new_ref = yield from cloud.op_copy_up(node, upper, "base")
        return new_ref

    new_ref = cloud.run_process(flow())
    # A fresh object now owns the name in the upper layer...
    assert new_ref.object_id != objs["base"].object_id
    ref = resolve(cloud, upper, "base")
    assert ref.object_id == new_ref.object_id
    # ...while the lower layer still points at the original.
    ref_low = resolve(cloud, lower, "base")
    assert ref_low.object_id == objs["base"].object_id


def test_copy_up_noop_when_upper_owns_name(cloud):
    upper, lower, objs = make_layers(cloud)
    node = cloud.client_node()

    def flow():
        ref = yield from cloud.op_copy_up(node, upper, "own")
        return ref

    ref = cloud.run_process(flow())
    assert ref.object_id == objs["own"].object_id
