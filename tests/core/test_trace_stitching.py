"""Trace context across async invokes and FIFO/socket hand-offs."""

import pytest

from repro.cluster import cpu_task
from repro.core import FunctionImpl, PCSICloud
from repro.faas import WASM
from repro.net.marshal import SizedPayload
from repro.sim import NeverSample
from repro.bench.timeline import render_graph_timeline
from repro.workloads.streaming import StreamingConfig, StreamingTransform


def _cloud(**kw):
    kw.setdefault("racks", 2)
    kw.setdefault("nodes_per_rack", 4)
    kw.setdefault("gpu_nodes_per_rack", 0)
    kw.setdefault("seed", 66)
    return PCSICloud(**kw)


# -- invoke_async --------------------------------------------------------

def test_invoke_async_nests_under_the_caller_tree():
    cloud = _cloud(trace=True)
    inner = cloud.define_function(
        "inner", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=1e7)])

    def outer_body(ctx):
        pending = ctx.invoke_async(inner)
        result = yield pending
        return result

    outer = cloud.define_function(
        "outer", [FunctionImpl("wasm", WASM, cpu_task(), work_ops=1e7)],
        body=outer_body)
    client = cloud.client_node()

    def flow():
        yield from cloud.invoke(client, outer)

    cloud.run_process(flow())
    tracer = cloud.tracer
    invokes = [s for s in tracer.spans(name="invoke") if s.finished]
    by_fn = {s.attributes["fn"]: s for s in invokes}
    assert set(by_fn) == {"outer", "inner"}
    # The async invocation's spans live in the SAME tree: its root is
    # the outer invoke, reached through the spawned process's context.
    assert tracer.root_of(by_fn["inner"]) is by_fn["outer"]
    assert by_fn["inner"].parent_id is not None


# -- FIFO hand-off stitching --------------------------------------------

@pytest.fixture(scope="module")
def pipelined():
    cloud = _cloud(trace=True)
    st = StreamingTransform(cloud, StreamingConfig(
        input_nbytes=1 << 20, chunks=4, stage_work=1e8))
    client = cloud.client_node()

    def flow():
        makespan = yield from st.run_pipelined(client)
        return makespan

    makespan = cloud.run_process(flow())
    cloud.run()
    return cloud, makespan


def test_pipelined_run_is_one_span_tree(pipelined):
    cloud, makespan = pipelined
    assert makespan > 0
    tracer = cloud.tracer
    roots = [s for s in tracer.roots() if s.finished]
    pipeline_roots = [s for s in roots if s.name == "pipeline"]
    assert len(pipeline_roots) == 1
    root = pipeline_roots[0]
    # Both stage invocations nest under the single pipeline root.
    stage_fns = {s.attributes["fn"] for s in tracer.walk(root)
                 if s.name == "invoke"}
    assert stage_fns == {"stream-decode", "stream-encode"}


def test_fifo_gets_record_their_producing_put(pipelined):
    cloud, _ = pipelined
    tracer = cloud.tracer
    puts = {s.span_id: s for s in tracer.spans(name="fifo.put")}
    gets = tracer.spans(name="fifo.get")
    assert len(puts) == 4 and len(gets) == 4
    for get in gets:
        origin = get.attributes.get("origin_span")
        assert origin in puts
        put = puts[origin]
        # Causality: the chunk was produced before it was consumed,
        # and both sides agree on its size.
        assert put.start <= get.end
        assert get.attributes["nbytes"] == put.attributes["nbytes"]
    # Each put feeds exactly one get.
    origins = [g.attributes["origin_span"] for g in gets]
    assert len(set(origins)) == 4


def test_graph_timeline_renders_stage_lanes(pipelined):
    cloud, _ = pipelined
    text = render_graph_timeline(cloud.tracer)
    assert text.startswith("pipeline ")
    assert "stream-decode" in text and "stream-encode" in text
    assert "#" in text      # execution
    assert ">" in text      # fifo hand-offs
    assert "legend:" in text
    lanes = [line for line in text.splitlines() if "[" in line]
    assert len(lanes) == 2


def test_graph_timeline_without_roots_is_graceful():
    cloud = _cloud(trace=True)
    assert "no finished graph/pipeline" in \
        render_graph_timeline(cloud.tracer)


# -- socket hand-off stitching ------------------------------------------

def test_socket_recv_records_origin_and_unwraps():
    cloud = _cloud(trace=True)
    host = cloud.topology.nodes[0].node_id
    other = cloud.client_node()
    sock = cloud.create_socket(host_node=host)

    def server():
        with cloud.tracer.span("server"):
            yield from cloud.op_socket_send(host, sock,
                                            SizedPayload(100))

    def client():
        with cloud.tracer.span("client"):
            item = yield from cloud.op_socket_recv(other, sock,
                                                   server_side=False)
            return item

    cloud.sim.spawn(server())
    item = cloud.run_process(client())
    assert isinstance(item, SizedPayload) and item.nbytes == 100
    send = cloud.tracer.spans(name="socket.send")[0]
    recv = cloud.tracer.spans(name="socket.recv")[0]
    assert recv.attributes["origin_span"] == send.span_id


def test_external_world_paths_stay_unwrapped():
    cloud = _cloud(trace=True)
    host = cloud.topology.nodes[0].node_id
    sock = cloud.create_socket(host_node=host)

    # Outside world -> kernel: raw payload, no origin recorded.
    cloud.external_send(sock, SizedPayload(10))

    def serve():
        req = yield from cloud.op_socket_recv(host, sock)
        yield from cloud.op_socket_send(host, sock,
                                        SizedPayload(req.nbytes * 2))

    cloud.sim.spawn(serve())

    def outside():
        resp = yield from cloud.external_recv(sock)
        return resp

    resp = cloud.run_process(outside())
    # Kernel -> outside world: the traced hand-off is unwrapped before
    # leaving the system.
    assert isinstance(resp, SizedPayload) and resp.nbytes == 20
    recv = cloud.tracer.spans(name="socket.recv")[0]
    assert "origin_span" not in recv.attributes


# -- sampling end to end -------------------------------------------------

def test_unsampled_pipeline_keeps_metrics_complete():
    cloud = _cloud(trace=True, sampler=NeverSample())
    st = StreamingTransform(cloud, StreamingConfig(
        input_nbytes=1 << 20, chunks=4, stage_work=1e8))
    client = cloud.client_node()

    def flow():
        makespan = yield from st.run_pipelined(client)
        return makespan

    makespan = cloud.run_process(flow())
    cloud.run()
    assert makespan > 0
    # No spans were retained...
    assert cloud.tracer.span_count == 0
    assert cloud.tracer.unsampled_roots >= 1
    # ...but the labeled metrics saw every request.
    counters = cloud.metrics.counters()
    assert counters["network.bytes"] > 0
    fifo_bytes = (counters.get("network.bytes{purpose=fifo-put}", 0)
                  + counters.get("network.local_bytes{purpose=fifo-put}",
                                 0))
    assert fifo_bytes > 0
